// Persistence primitives + PM emulation layer.
//
// This module is the substrate the paper obtains from real hardware plus the
// Quartz DRAM-based PM latency emulator:
//
//  * `Clflush` / `Persist` / `Sfence` wrap the real cache-line flush and store
//    fence instructions, so flush *counts* and cache-eviction side effects are
//    the real thing.
//  * Configurable latency injection substitutes for Quartz (see DESIGN.md
//    §5.1): every flushed cache line spins for `write_latency_ns`, and every
//    `AnnotateRead` (called once per pointer-chased PM node by the index
//    implementations) spins for `read_latency_ns`.  The paper's performance
//    arguments are about flush/fence/serial-read counts, and this layer makes
//    those counts the directly priced quantities.
//  * `FenceIfNotTso` implements the paper's `mfence_IF_NOT_TSO()`: a no-op on
//    TSO (x86) and a real fence plus a `dmb` cost surrogate in the emulated
//    non-TSO mode used by the Fig 5(d) experiment.
//  * Per-thread counters record flushed lines, fences, barrier calls, read
//    annotations, and time spent flushing; the Fig 5(a) breakdown and the
//    barrier-count ablations read them.
//
// Thread safety: configuration is global and read with relaxed atomics (set it
// before or between benchmark phases); statistics are thread-local.

#pragma once

#include <cstddef>
#include <cstdint>

#include "common/defs.h"

namespace fastfair::pm {

enum class MemModel : std::uint8_t {
  kTso,     // x86-like: stores are not reordered with stores.
  kNonTso,  // ARM-like: FAST must fence between dependent stores.
};

enum class Persistency : std::uint8_t {
  kStrict,   // persist order == volatile store order (paper's main model)
  kRelaxed,  // epoch-style: a persist barrier is required per ordered flush
};

struct Config {
  std::uint64_t write_latency_ns = 0;  // injected per flushed cache line
  std::uint64_t read_latency_ns = 0;   // injected per AnnotateRead call
  std::uint64_t barrier_ns = 0;        // injected per FenceIfNotTso (non-TSO)
  MemModel model = MemModel::kTso;
  // Paper §VI: under relaxed persistency FAST/FAIR must issue a persist
  // barrier per ordered cache-line flush (they already do for in-node
  // shifts; this additionally orders multi-line persists, e.g. split
  // copies). Enables the ablation_persistency experiment.
  Persistency persistency = Persistency::kStrict;
  // Opt-in flush coalescing (DESIGN.md §8.2): while a FlushScope is open,
  // same-cache-line flushes dedupe into a write-combining buffer and the
  // scope drains as one clflushopt train plus a single trailing fence.
  // Only honoured under Persistency::kRelaxed — strict mode keeps the
  // paper's eager per-boundary flush order untouched.
  bool coalesce_flushes = false;
};

/// Installs a new global emulation config. Not meant to race with operations;
/// benchmarks call it between phases.
void SetConfig(const Config& cfg);
Config GetConfig();

/// Convenience setters used by benchmark sweeps.
void SetWriteLatencyNs(std::uint64_t ns);
void SetReadLatencyNs(std::uint64_t ns);
void SetMemModel(MemModel model, std::uint64_t barrier_ns = 0);

/// Per-thread persistence statistics.
struct ThreadStats {
  std::uint64_t flush_lines = 0;       // cache lines flushed
  std::uint64_t fences = 0;            // sfence count
  std::uint64_t barriers = 0;          // FenceIfNotTso count (non-TSO only)
  std::uint64_t read_annotations = 0;  // PM node visits charged read latency
  std::uint64_t read_stalls = 0;       // serialized read-latency stalls paid
  std::uint64_t wc_lines_saved = 0;    // same-line flushes a FlushScope deduped
  std::uint64_t wc_fences_saved = 0;   // fences a FlushScope deferred/elided
  std::uint64_t flush_ns = 0;          // wall time inside Clflush/Persist
  std::uint64_t allocs = 0;            // PM pool allocations
  std::uint64_t alloc_bytes = 0;       // bytes handed out to this thread
  std::uint64_t arena_refills = 0;     // arena chunk reservations (global CAS)
  std::uint64_t frees = 0;             // Pool::Free calls from this thread
  std::uint64_t free_bytes = 0;        // bytes this thread logically freed
  std::uint64_t recycles = 0;          // allocations served from a free list
  std::uint64_t recycle_bytes = 0;     // bytes served from free lists
  std::uint64_t freelist_spills = 0;   // cache -> global batch pushes
  std::uint64_t freelist_refills = 0;  // global -> cache batch pops

  ThreadStats& operator-=(const ThreadStats& o);
  ThreadStats operator-(const ThreadStats& o) const;
  /// Member-wise sum: aggregates per-thread deltas across a worker pool
  /// (the service tier folds each worker's phase delta into one total).
  ThreadStats& operator+=(const ThreadStats& o);
  ThreadStats operator+(const ThreadStats& o) const;
};

/// Mutable reference to this thread's counters.
ThreadStats& Stats();
void ResetStats();

/// Flushes one cache line containing `addr` and charges write latency.
void Clflush(const void* addr);

/// Flushes every cache line in [addr, addr+len) and issues a store fence.
/// This is the paper's `clflush_with_mfence`.
void Persist(const void* addr, std::size_t len);

/// Flushes the range without a trailing fence (used when several ranges are
/// persisted together, with one explicit Sfence at the end).
void FlushRange(const void* addr, std::size_t len);

/// Store fence: orders flushes with subsequent stores.
void Sfence();

/// The paper's `mfence_IF_NOT_TSO()`. No-op under TSO; real fence plus `dmb`
/// cost surrogate under the emulated non-TSO model.
void FenceIfNotTso();

/// Read-latency injection point: indexes call this once per PM node they
/// pointer-chase into. Models serial (dependent) PM reads; adjacent lines
/// within a node are assumed fetched in parallel by MLP / prefetch, per the
/// paper's §5.4 argument. Charges one read_stall (and one latency spin).
void AnnotateRead(const void* node);

/// Grouped read annotation for the batched descent pipeline (DESIGN.md
/// §8.1): `nodes` PM nodes whose addresses were all known before any was
/// dereferenced (an interleaved group of descents that prefetched each
/// child one level ahead), so the fetches overlap in the memory system the
/// same way a node's adjacent lines do. Counts `nodes` read_annotations
/// (node-visit accounting is unchanged) but only ONE serialized stall —
/// one read_stall, one latency spin. No-op when nodes == 0.
void AnnotateReadGroup(std::size_t nodes);

/// Write-combining flush scope (DESIGN.md §8.2). While the innermost
/// engaged scope on this thread is open, Clflush/FlushRange record their
/// cache lines into a thread-local buffer (duplicates dedupe; counted in
/// ThreadStats::wc_lines_saved) and Sfence defers (wc_fences_saved); the
/// outermost scope's destructor flushes each distinct line once — charging
/// the usual per-line write latency — and issues a single trailing fence.
/// Engages only when the global config is Persistency::kRelaxed AND
/// Config::coalesce_flushes, so the paper's strict-order flush argument is
/// untouched by default; under the opt-in the durability point of an
/// operation moves from each internal boundary to scope exit (the whole
/// operation becomes one persist epoch — a crash mid-scope may lose the
/// in-flight operation, never the ordering of completed ones).
class FlushScope {
 public:
  FlushScope();
  ~FlushScope();
  FlushScope(const FlushScope&) = delete;
  FlushScope& operator=(const FlushScope&) = delete;

  /// True when a scope is currently capturing on this thread (tests).
  static bool Active();

 private:
  bool engaged_ = false;
};

/// Busy-waits approximately `ns` nanoseconds (TSC-calibrated).
void SpinNs(std::uint64_t ns);

/// Monotonic nanosecond clock (TSC-based when available).
std::uint64_t NowNs();

}  // namespace fastfair::pm
