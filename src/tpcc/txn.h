// The five TPC-C transaction profiles (§5.6 / Fig 6), single-threaded over
// a Db. Each returns false only on spec-sanctioned aborts (e.g. New-Order
// with an invalid item, ~1%).

#pragma once

#include "common/rng.h"
#include "tpcc/db.h"

namespace fastfair::tpcc {

enum class TxnType : std::uint8_t {
  kNewOrder,
  kPayment,
  kOrderStatus,
  kDelivery,
  kStockLevel,
};

bool RunNewOrder(Db& db, Rng& rng);
bool RunPayment(Db& db, Rng& rng);
bool RunOrderStatus(Db& db, Rng& rng);
bool RunDelivery(Db& db, Rng& rng);
bool RunStockLevel(Db& db, Rng& rng);

bool RunTxn(Db& db, Rng& rng, TxnType type);

}  // namespace fastfair::tpcc
