// Tests for the hash-sharded index tier (index/hash_sharded.h): routing
// balance under clustered keys, the streaming k-way merge Scan (ordering
// and completeness, including under interleaved inserts/deletes), the
// ScanIterator API (merge iterator and the default batched adapter), and
// the "hashed-<kind>[:N]" registry grammar.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/hash_sharded.h"
#include "index/index.h"
#include "index/sharded.h"
#include "pm/pool.h"

namespace fastfair {
namespace {

std::unique_ptr<HashShardedIndex> MakeHashed(pm::Pool* pool,
                                             std::size_t shards) {
  return std::make_unique<HashShardedIndex>(
      "hashed-fastfair", shards,
      [pool](std::size_t) { return MakeIndex("fastfair", pool); });
}

TEST(HashShardedIndex, ClusteredKeysSpreadAcrossShards) {
  // The raison d'être: keys packed into a tiny prefix of the key space —
  // which the range partition would dump entirely into shard 0 — spread
  // near-evenly under fibonacci-hash routing.
  pm::Pool pool(std::size_t{1} << 30);
  auto idx = MakeHashed(&pool, 8);
  std::vector<std::size_t> per_shard(8, 0);
  for (Key k = 1; k <= 8000; ++k) {
    const std::size_t s = idx->ShardOf(k);
    ASSERT_LT(s, 8u);
    per_shard[s] += 1;
    idx->Insert(k, k + 1);
  }
  EXPECT_LE(ImbalanceRatio(per_shard), 1.5)
      << "dense sequential keys must spread under hashing";
  const auto counts = idx->ShardEntryCounts();
  EXPECT_EQ(per_shard, counts) << "routing and storage must agree";
  EXPECT_EQ(idx->CountEntries(), 8000u);
}

TEST(HashShardedIndex, ScanMergesShardsIntoGlobalOrder) {
  pm::Pool pool(std::size_t{1} << 30);
  auto idx = MakeHashed(&pool, 5);
  std::map<Key, Value> model;
  Rng rng(91);
  for (int i = 0; i < 20000; ++i) {
    const Key k = rng.Next() | 1;
    idx->Insert(k, k ^ 0x1234);
    model[k] = k ^ 0x1234;
  }
  std::vector<core::Record> out(509);
  for (int q = 0; q < 20; ++q) {
    const Key start = rng.Next();
    const std::size_t n = idx->Scan(start, out.size(), out.data());
    auto it = model.lower_bound(start);
    const std::size_t expect = std::min<std::size_t>(
        out.size(), static_cast<std::size_t>(std::distance(it, model.end())));
    ASSERT_EQ(n, expect) << "scan from " << start;
    for (std::size_t i = 0; i < n; ++i, ++it) {
      ASSERT_EQ(out[i].key, it->first) << "position " << i;
      ASSERT_EQ(out[i].ptr, it->second);
      if (i > 0) ASSERT_LT(out[i - 1].key, out[i].key) << "must be sorted";
    }
  }
}

TEST(HashShardedIndex, ScanStaysCompleteUnderInterleavedInsertsAndDeletes) {
  // The merge must not lose or duplicate surviving keys when the entry set
  // churns between scans: keys deleted from one shard must vanish from the
  // merged stream, keys inserted must appear, everything else persists.
  pm::Pool pool(std::size_t{1} << 30);
  auto idx = MakeHashed(&pool, 4);
  std::map<Key, Value> model;
  Rng rng(93);
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 600; ++i) {
      const Key k = rng.NextBounded(10000) + 1;
      if (rng.NextBounded(3) == 0) {
        const bool in_model = model.erase(k) > 0;
        ASSERT_EQ(idx->Remove(k), in_model);
      } else {
        const Value v = (k << 20) + static_cast<Value>(round) + 1;
        idx->Insert(k, v);
        model[k] = v;
      }
    }
    // Full-stream check through the iterator API every few rounds.
    if (round % 5 != 4) continue;
    auto it = idx->NewScanIterator(0);
    core::Record rec;
    auto mit = model.begin();
    std::size_t n = 0;
    while (it->Next(&rec)) {
      ASSERT_NE(mit, model.end());
      ASSERT_EQ(rec.key, mit->first) << "round " << round << " pos " << n;
      ASSERT_EQ(rec.ptr, mit->second);
      ++mit;
      ++n;
    }
    ASSERT_EQ(mit, model.end()) << "merge lost trailing keys";
    ASSERT_EQ(n, model.size());
  }
}

TEST(ScanIteratorApi, DefaultBatchedIteratorMatchesScanOnEveryKind) {
  // The base-class iterator adapts the virtual Scan, so every registered
  // kind — plain, range-sharded, hash-sharded — must stream the same
  // entries Scan returns, across refill boundaries (batches start at 16
  // and double to 256, so 3000 keys cross several).
  pm::Pool pool(std::size_t{1} << 30);
  for (const char* kind : {"fastfair", "wbtree", "skiplist",
                           "sharded-fastfair:3", "hashed-fastfair:3"}) {
    auto idx = MakeIndex(kind, &pool);
    Rng rng(95);
    std::set<Key> keys;
    for (int i = 0; i < 3000; ++i) keys.insert(rng.Next() | 1);
    for (const Key k : keys) idx->Insert(k, k + 3);
    const Key start = *std::next(keys.begin(), 100);
    auto it = idx->NewScanIterator(start);
    core::Record rec;
    auto kit = keys.lower_bound(start);
    std::size_t n = 0;
    while (it->Next(&rec)) {
      ASSERT_NE(kit, keys.end()) << kind;
      ASSERT_EQ(rec.key, *kit) << kind << " pos " << n;
      ASSERT_EQ(rec.ptr, *kit + 3) << kind;
      ++kit;
      ++n;
    }
    EXPECT_EQ(kit, keys.end()) << kind << " iterator ended early";
    // Exhausted iterators stay exhausted.
    EXPECT_FALSE(it->Next(&rec)) << kind;
  }
}

TEST(HashShardedIndex, ConcurrentInsertAndSearch) {
  pm::Pool pool(std::size_t{2} << 30);
  auto idx = MakeIndex("hashed-fastfair:8", &pool);
  ASSERT_TRUE(idx->supports_concurrency());
  constexpr int kWriters = 4, kPerWriter = 15000;
  // Sequential per-writer key blocks: maximally clustered, so balance and
  // correctness both rest on the hash routing.
  auto key_of = [](int w, int i) {
    return static_cast<Key>(w) * kPerWriter + static_cast<Key>(i) + 1;
  };
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const Key k = key_of(w, i);
        idx->Insert(k, 2 * k + 1);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0};
  std::thread reader([&] {
    Rng rng(7);
    std::uint64_t local = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const Key k = key_of(static_cast<int>(rng.NextBounded(kWriters)),
                           static_cast<int>(rng.NextBounded(kPerWriter)));
      const Value v = idx->Search(k);
      if (v != kNoValue) {
        ASSERT_EQ(v, 2 * k + 1);
        ++local;
      }
    }
    hits.fetch_add(local);
  });
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();
  EXPECT_GT(hits.load(), 0u);
  EXPECT_EQ(idx->CountEntries(),
            static_cast<std::size_t>(kWriters) * kPerWriter);
}

TEST(HashShardedIndex, FactoryParsesHashedGrammar) {
  pm::Pool pool(std::size_t{1} << 30);
  auto idx = MakeIndex("hashed-fastfair:16", &pool);
  EXPECT_EQ(idx->name(), "hashed-fastfair:16");
  idx->Insert(7, 8);
  EXPECT_EQ(idx->Search(7), 8u);
  auto* hashed = dynamic_cast<HashShardedIndex*>(idx.get());
  ASSERT_NE(hashed, nullptr);
  EXPECT_EQ(hashed->num_shards(), 16u);
  // Default shard count, any inner kind, concurrency conjunction.
  EXPECT_EQ(dynamic_cast<HashShardedIndex*>(
                MakeIndex("hashed-fptree", &pool).get())
                ->num_shards(),
            8u);
  EXPECT_TRUE(MakeIndex("hashed-skiplist:2", &pool)->supports_concurrency());
  EXPECT_FALSE(MakeIndex("hashed-wbtree:2", &pool)->supports_concurrency());
  // Malformed counts and inner kinds.
  EXPECT_THROW(MakeIndex("hashed-fastfair:0", &pool), std::invalid_argument);
  EXPECT_THROW(MakeIndex("hashed-fastfair:x", &pool), std::invalid_argument);
  EXPECT_THROW(MakeIndex("hashed-fastfair:", &pool), std::invalid_argument);
  EXPECT_THROW(MakeIndex("hashed-", &pool), std::invalid_argument);
  EXPECT_THROW(MakeIndex("hashed-btrfs:2", &pool), std::invalid_argument);
  // Nested sharding adapters are rejected in both directions.
  EXPECT_THROW(MakeIndex("hashed-hashed-fastfair:2", &pool),
               std::invalid_argument);
  EXPECT_THROW(MakeIndex("hashed-sharded-fastfair:2", &pool),
               std::invalid_argument);
  EXPECT_THROW(MakeIndex("sharded-hashed-fastfair:2", &pool),
               std::invalid_argument);
}

TEST(HashShardedIndex, RegisteredInAllIndexKinds) {
  const auto kinds = AllIndexKinds();
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), "hashed-fastfair"),
            kinds.end());
}

}  // namespace
}  // namespace fastfair
