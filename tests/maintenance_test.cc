// Tests for the background maintenance tier (DESIGN.md §6): the scheduler
// (MaintenanceThread quantum accounting, Start/Stop, WaitIdle, RunPass),
// the pm drain task retiring epoch-parked limbo without a writer, the core
// sweep task unlinking abandoned drained runs, and the imbalance policy
// closing the histogram→Rebalance loop on its own thread.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "core/btree.h"
#include "index/index.h"
#include "index/sharded.h"
#include "maint/tasks.h"
#include "pm/persist.h"
#include "pm/pool.h"
#include "pm/reclaim.h"
#include "test_util.h"

namespace fastfair {
namespace {

using maint::MaintenanceTask;
using maint::MaintenanceThread;
using maint::QuantumResult;
using maint::TaskOptions;

// A scripted task: returns canned results, counts invocations.
class FakeTask final : public MaintenanceTask {
 public:
  explicit FakeTask(std::vector<QuantumResult> script)
      : script_(std::move(script)) {}
  std::string_view name() const override { return "fake"; }
  QuantumResult RunQuantum() override {
    const std::size_t i = calls_++;
    if (i < script_.size()) return script_[i];
    QuantumResult rest;
    rest.at_rest = true;
    return rest;
  }
  std::size_t calls() const { return calls_; }

 private:
  std::vector<QuantumResult> script_;
  std::size_t calls_ = 0;
};

TEST(MaintenanceThread, RunPassStopsWhenAllTasksRest) {
  MaintenanceThread mt;
  auto owned = std::make_unique<FakeTask>(std::vector<QuantumResult>{
      {.items = 3, .bytes = 64, .at_rest = false},
      {.items = 1, .bytes = 0, .at_rest = false},
      {.items = 0, .bytes = 0, .at_rest = true},
  });
  FakeTask* task = owned.get();
  mt.AddTask(std::move(owned));
  const std::size_t useful = mt.RunPass();
  EXPECT_EQ(useful, 2u);
  EXPECT_EQ(task->calls(), 3u);
  const auto reports = mt.StatsSnapshot();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].name, "fake");
  EXPECT_EQ(reports[0].stats.quanta, 3u);
  EXPECT_EQ(reports[0].stats.useful_quanta, 2u);
  EXPECT_EQ(reports[0].stats.items, 4u);
  EXPECT_EQ(reports[0].stats.bytes, 64u);
}

TEST(MaintenanceThread, StartStopAndWaitIdle) {
  MaintenanceThread::Options mo;
  mo.interval = std::chrono::microseconds(100);
  MaintenanceThread mt(mo);
  mt.AddTask(std::make_unique<FakeTask>(std::vector<QuantumResult>{
      {.items = 1, .bytes = 0, .at_rest = false},
  }));
  EXPECT_FALSE(mt.running());
  mt.Start();
  EXPECT_TRUE(mt.running());
  mt.Start();  // idempotent
  EXPECT_TRUE(mt.WaitIdle(std::chrono::milliseconds(5000)));
  mt.Stop();
  EXPECT_FALSE(mt.running());
  mt.Stop();  // idempotent
  const auto reports = mt.StatsSnapshot();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GE(reports[0].stats.quanta, 2u);
  EXPECT_EQ(reports[0].stats.items, 1u);
}

TEST(PoolDrain, BackgroundThreadRetiresParkedLimboWithoutAWriter) {
  // The acceptance shape of the churn bench's idle phase, as a unit test:
  // frees parked under a pinned epoch, the writer hands its residue over
  // and goes silent, the background thread must bring limbo to zero.
  pm::Pool pool(std::size_t{32} << 20);
  constexpr int kBlocks = 500;
  constexpr std::size_t kSize = 256;
  std::vector<void*> blocks;
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(pool.Alloc(kSize));
  {
    pm::EpochGuard pin;  // lagging-reader stand-in: nothing can recycle
    for (void* p : blocks) pool.Free(p, kSize);
    pool.FlushThreadLimbo();
  }
  const std::size_t parked = pool.limbo_bytes();
  EXPECT_GE(parked, kBlocks * kSize / 2)
      << "pinned frees must park in the overflow limbo";

  MaintenanceThread::Options mo;
  mo.interval = std::chrono::microseconds(100);
  MaintenanceThread mt(mo);
  mt.AddTask(std::make_unique<maint::PoolDrainTask>(&pool, TaskOptions{}));
  mt.Start();
  const bool drained =
      testutil::PollUntil([&] { return pool.limbo_bytes() == 0; });
  mt.Stop();
  EXPECT_TRUE(drained);
  EXPECT_EQ(pool.limbo_bytes(), 0u);
  const auto reports = mt.StatsSnapshot();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GE(reports[0].stats.bytes, parked);
  // The drained blocks are really recyclable: same-size allocations come
  // from the free lists, not the bump offset.
  const std::size_t used_before = pool.used();
  for (int i = 0; i < kBlocks / 2; ++i) pool.Alloc(kSize);
  EXPECT_EQ(pool.used(), used_before)
      << "allocations after the drain must recycle, not bump";
}

TEST(PoolDrain, DrainQuantumHonorsBudget) {
  pm::Pool pool(std::size_t{32} << 20);
  constexpr int kBlocks = 100;
  constexpr std::size_t kSize = 128;
  std::vector<void*> blocks;
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(pool.Alloc(kSize));
  {
    pm::EpochGuard pin;
    for (void* p : blocks) pool.Free(p, kSize);
    pool.FlushThreadLimbo();
  }
  const std::size_t parked = pool.limbo_bytes();
  ASSERT_GT(parked, 0u);
  // One bounded quantum drains at most 10 blocks.
  const std::size_t drained = pool.DrainLimboQuantum(10);
  EXPECT_EQ(drained, 10 * kSize);
  EXPECT_EQ(pool.limbo_bytes(), parked - drained);
  // An unbounded quantum finishes the job.
  EXPECT_EQ(pool.DrainLimboQuantum(), parked - drained);
  EXPECT_EQ(pool.limbo_bytes(), 0u);
}

TEST(SweepTask, ReclaimsAbandonedDrainedRuns) {
  // The stranding case the sweep exists for: remove a key range in
  // ascending order and never return — each Remove only looks at its
  // leaf's right sibling, so leaves that empty behind the cursor strand
  // (no later traffic re-enters the range from the left).
  pm::Pool pool(std::size_t{256} << 20);
  core::Options opts;
  opts.reclaim_empty_leaves = true;
  core::BTree tree(&pool, opts);
  constexpr std::uint64_t kN = 30000;
  for (std::uint64_t i = 1; i <= kN; ++i) tree.Insert(i << 8, i);
  // Drain the bottom 3/4 ascending; keep the top quarter live.
  for (std::uint64_t i = 1; i <= (3 * kN) / 4; ++i) {
    ASSERT_TRUE(tree.Remove(i << 8));
  }
  const auto before = tree.GetTreeStats();
  ASSERT_GT(before.nodes_per_level[0], kN / 64)
      << "ascending drain must actually strand empty leaves";

  pm::ResetStats();
  const pm::ThreadStats start = pm::Stats();
  // Drive the sweep through the task (cursor persistence across quanta).
  maint::SweepTask<core::BTree> task("sweep:test", &tree, TaskOptions{});
  std::size_t unlinked = 0;
  for (int q = 0; q < 100000; ++q) {
    const QuantumResult r = task.RunQuantum();
    unlinked += r.items;
    if (r.at_rest) break;
  }
  EXPECT_GT(unlinked, 0u);
  const pm::ThreadStats delta = pm::Stats() - start;
  EXPECT_GT(delta.frees, 0u) << "swept leaves must return to the pool";

  const auto after = tree.GetTreeStats();
  EXPECT_LT(after.nodes_per_level[0], before.nodes_per_level[0] / 2)
      << "the stranded run must actually shrink the leaf chain";
  EXPECT_EQ(after.entries, kN / 4);
  std::string msg;
  EXPECT_TRUE(tree.CheckInvariants(&msg)) << msg;
  // Surviving keys are all reachable.
  for (std::uint64_t i = (3 * kN) / 4 + 1; i <= kN; ++i) {
    ASSERT_EQ(tree.Search(i << 8), i);
  }
  // A second full sweep of the clean tree finds nothing.
  std::size_t again = 0;
  for (int q = 0; q < 100000; ++q) {
    const QuantumResult r = task.RunQuantum();
    again += r.items;
    if (r.at_rest) break;
  }
  EXPECT_EQ(again, 0u);
}

TEST(SweepTask, RunPassRecoversRunsAbandonedAfterARest) {
  // Regression for the pass-coverage hole: a task that rested after a
  // clean wrap must not skip a run abandoned since — RunPass resets the
  // sweep's coverage state (OnPassBegin), so every synchronous window
  // covers the whole chain no matter what the task remembers.
  pm::Pool pool(std::size_t{256} << 20);
  core::Options opts;
  opts.reclaim_empty_leaves = true;
  core::BTree tree(&pool, opts);
  constexpr std::uint64_t kN = 30000;
  for (std::uint64_t i = 1; i <= kN; ++i) tree.Insert(i << 8, i);

  MaintenanceThread mt;
  mt.AddTask(std::make_unique<maint::SweepTask<core::BTree>>(
      "sweep:test", &tree, TaskOptions{}));
  mt.RunPass();  // full clean wrap: the task now remembers itself at rest

  // Strand a run deep in the chain — far beyond one quantum's budget from
  // the head — by draining a middle block in ascending order.
  for (std::uint64_t i = kN / 2; i < kN / 2 + kN / 4; ++i) {
    ASSERT_TRUE(tree.Remove(i << 8));
  }
  const auto before = tree.GetTreeStats();
  mt.RunPass();
  const auto after = tree.GetTreeStats();
  EXPECT_LT(after.nodes_per_level[0] + kN / 256, before.nodes_per_level[0])
      << "the second pass must reclaim the newly-stranded run";
  EXPECT_EQ(after.entries, kN - kN / 4);
  std::string msg;
  EXPECT_TRUE(tree.CheckInvariants(&msg)) << msg;
}

TEST(SweepTask, CollectedThroughIndexRegistry) {
  // The adapter layer wires the sweep automatically for reclaiming kinds
  // (and only for them), through every composite level.
  pm::Pool pool(std::size_t{64} << 20);
  const TaskOptions topts;
  {
    auto idx = MakeIndex("fastfair-reclaim", &pool);
    std::vector<std::unique_ptr<MaintenanceTask>> tasks;
    idx->CollectMaintenanceTasks(topts, &tasks);
    ASSERT_EQ(tasks.size(), 1u);
    EXPECT_EQ(tasks[0]->name(), "sweep:fastfair-reclaim");
  }
  {
    auto idx = MakeIndex("fastfair", &pool);  // no reclamation => no tasks
    std::vector<std::unique_ptr<MaintenanceTask>> tasks;
    idx->CollectMaintenanceTasks(topts, &tasks);
    EXPECT_TRUE(tasks.empty());
  }
  {
    auto idx = MakeIndex("sharded-fastfair-reclaim:4", &pool);
    std::vector<std::unique_ptr<MaintenanceTask>> tasks;
    idx->CollectMaintenanceTasks(topts, &tasks);
    // One imbalance policy + one sweep per shard.
    ASSERT_EQ(tasks.size(), 5u);
    EXPECT_EQ(tasks[0]->name(), "rebalance:sharded-fastfair-reclaim:4");
  }
  {
    auto idx = MakeIndex("hashed-fastfair-reclaim:4", &pool);
    std::vector<std::unique_ptr<MaintenanceTask>> tasks;
    idx->CollectMaintenanceTasks(topts, &tasks);
    EXPECT_EQ(tasks.size(), 4u);  // sweeps only: hash needs no policy
  }
  {
    auto idx = MakeIndex("sharded-fastfair:4", &pool);
    std::vector<std::unique_ptr<MaintenanceTask>> tasks;
    idx->CollectMaintenanceTasks(topts, &tasks);
    EXPECT_EQ(tasks.size(), 1u);  // policy only: inner kind has no sweep
  }
}

TEST(ImbalancePolicy, RebalancesInBackgroundAndEnablesSampling) {
  pm::Pool pool(std::size_t{1} << 30);
  auto idx = std::make_unique<ShardedIndex>(
      "sharded", 4,
      [&pool](std::size_t) { return MakeIndex("fastfair", &pool); });
  // The satellite fix: a caller that disabled sampling still gets the
  // histogram signal the moment a policy attaches.
  idx->SetSampleInterval(0);
  TaskOptions topts;
  topts.rebalance_threshold = 1.5;
  std::vector<std::unique_ptr<MaintenanceTask>> tasks;
  idx->CollectMaintenanceTasks(topts, &tasks);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(idx->sample_interval(), 4096u)
      << "attaching a policy must re-enable a sane sampling default";

  // Clustered keys: everything lands in shard 0 under the uniform
  // partition.
  constexpr std::uint64_t kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    idx->Insert((i + 1) << 32, i + 1);
  }
  ASSERT_GT(ImbalanceRatio(idx->ShardEntryCounts()), 1.5);

  MaintenanceThread::Options mo;
  mo.interval = std::chrono::microseconds(100);
  MaintenanceThread mt(mo);
  for (auto& t : tasks) mt.AddTask(std::move(t));
  mt.Start();
  EXPECT_TRUE(mt.WaitIdle(std::chrono::milliseconds(30000)));
  mt.Stop();

  const auto reports = mt.StatsSnapshot();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GE(reports[0].stats.items, 1u) << "policy must have rebalanced";
  EXPECT_LE(ImbalanceRatio(idx->ShardEntryCounts()), 1.5);
  EXPECT_EQ(idx->CountEntries(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(idx->Search((i + 1) << 32), i + 1);
  }
}

TEST(ImbalancePolicy, RestsBelowThresholdAndOnTinyIndexes) {
  pm::Pool pool(std::size_t{64} << 20);
  auto idx = std::make_unique<ShardedIndex>(
      "sharded", 4,
      [&pool](std::size_t) { return MakeIndex("fastfair", &pool); });
  TaskOptions topts;
  maint::ImbalancePolicyTask task(idx.get(), topts);
  // Empty index: at rest, no rebalance.
  QuantumResult r = task.RunQuantum();
  EXPECT_TRUE(r.at_rest);
  EXPECT_EQ(r.items, 0u);
  // A few clustered keys — wildly imbalanced but below the size gate, so
  // the policy must not thrash on noise.
  for (std::uint64_t i = 0; i < 32; ++i) idx->Insert((i + 1) << 32, i + 1);
  r = task.RunQuantum();
  EXPECT_TRUE(r.at_rest);
  EXPECT_EQ(r.items, 0u);
}

}  // namespace
}  // namespace fastfair
