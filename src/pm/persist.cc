#include "pm/persist.h"

#include <atomic>
#include <chrono>

#if defined(__x86_64__)
#include <immintrin.h>
#include <x86intrin.h>
#endif

namespace fastfair::pm {
namespace {

// Global emulation configuration, packed into individually-atomic fields so
// hot paths read them with relaxed loads.
std::atomic<std::uint64_t> g_write_latency_ns{0};
std::atomic<std::uint64_t> g_read_latency_ns{0};
std::atomic<std::uint64_t> g_barrier_ns{0};
std::atomic<MemModel> g_model{MemModel::kTso};
std::atomic<Persistency> g_persistency{Persistency::kStrict};
std::atomic<bool> g_coalesce{false};

thread_local ThreadStats t_stats;

// Write-combining capture state for FlushScope. One buffer per thread;
// nesting only bumps the depth (the outermost scope drains). The capacity
// bounds a single operation's distinct dirty lines — a split flushes a
// whole node (8 lines at 512 B) plus parents and meta, well under 64; a
// full buffer drains early (no fence) and keeps capturing.
struct ScopeState {
  static constexpr std::size_t kCap = 64;
  std::uintptr_t lines[kCap];
  std::size_t n = 0;
  int depth = 0;
  bool dirty = false;  // any line captured since the outermost scope opened
};
thread_local ScopeState t_scope;

#if defined(__x86_64__)
// Cycles per nanosecond, calibrated once at startup against the steady clock.
double CalibrateTscPerNs() {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const std::uint64_t c0 = __rdtsc();
  // ~2 ms calibration window: long enough to dwarf clock-read overhead.
  while (std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               t0)
             .count() < 2000) {
  }
  const std::uint64_t c1 = __rdtsc();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - t0)
                      .count();
  return static_cast<double>(c1 - c0) / static_cast<double>(ns);
}

double TscPerNs() {
  static const double v = CalibrateTscPerNs();
  return v;
}
#endif

#if defined(__x86_64__)
bool DetectClflushOpt() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("clflushopt");
}

// Compiled with the clflushopt ISA enabled for this one function; only
// called after the runtime CPU check above.
__attribute__((target("clflushopt"))) void ClflushOptLine(const void* addr) {
  _mm_clflushopt(const_cast<void*>(addr));
}
#endif

inline void FlushLine(const void* addr) {
#if defined(__x86_64__)
  // Prefer clflushopt (weakly ordered, cheaper) when the CPU has it; every
  // ordering-sensitive call site in this codebase pairs flushes with an
  // explicit Sfence, so the weaker ordering is safe.
  static const bool has_clflushopt = DetectClflushOpt();
  if (has_clflushopt) {
    ClflushOptLine(addr);
  } else {
    _mm_clflush(addr);
  }
#else
  (void)addr;
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

// Flushes every line captured by the open scope, charging the usual
// per-line write latency, without a trailing fence (the caller decides).
void DrainScopeLines() {
  if (t_scope.n == 0) return;
  const std::uint64_t t0 = NowNs();
  const std::uint64_t lat = g_write_latency_ns.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < t_scope.n; ++i) {
    FlushLine(reinterpret_cast<const void*>(t_scope.lines[i]));
    t_stats.flush_lines += 1;
    if (lat != 0) SpinNs(lat);
  }
  t_scope.n = 0;
  t_stats.flush_ns += NowNs() - t0;
}

// Records `line` (already line-aligned) in the scope buffer; duplicates
// are the write-combining win and are only counted.
void ScopeAddLine(std::uintptr_t line) {
  t_scope.dirty = true;
  for (std::size_t i = 0; i < t_scope.n; ++i) {
    if (t_scope.lines[i] == line) {
      t_stats.wc_lines_saved += 1;
      return;
    }
  }
  if (t_scope.n == ScopeState::kCap) DrainScopeLines();
  t_scope.lines[t_scope.n++] = line;
}

}  // namespace

ThreadStats& ThreadStats::operator-=(const ThreadStats& o) {
  flush_lines -= o.flush_lines;
  fences -= o.fences;
  barriers -= o.barriers;
  read_annotations -= o.read_annotations;
  read_stalls -= o.read_stalls;
  wc_lines_saved -= o.wc_lines_saved;
  wc_fences_saved -= o.wc_fences_saved;
  flush_ns -= o.flush_ns;
  allocs -= o.allocs;
  alloc_bytes -= o.alloc_bytes;
  arena_refills -= o.arena_refills;
  frees -= o.frees;
  free_bytes -= o.free_bytes;
  recycles -= o.recycles;
  recycle_bytes -= o.recycle_bytes;
  freelist_spills -= o.freelist_spills;
  freelist_refills -= o.freelist_refills;
  return *this;
}

ThreadStats ThreadStats::operator-(const ThreadStats& o) const {
  ThreadStats r = *this;
  r -= o;
  return r;
}

ThreadStats& ThreadStats::operator+=(const ThreadStats& o) {
  flush_lines += o.flush_lines;
  fences += o.fences;
  barriers += o.barriers;
  read_annotations += o.read_annotations;
  read_stalls += o.read_stalls;
  wc_lines_saved += o.wc_lines_saved;
  wc_fences_saved += o.wc_fences_saved;
  flush_ns += o.flush_ns;
  allocs += o.allocs;
  alloc_bytes += o.alloc_bytes;
  arena_refills += o.arena_refills;
  frees += o.frees;
  free_bytes += o.free_bytes;
  recycles += o.recycles;
  recycle_bytes += o.recycle_bytes;
  freelist_spills += o.freelist_spills;
  freelist_refills += o.freelist_refills;
  return *this;
}

ThreadStats ThreadStats::operator+(const ThreadStats& o) const {
  ThreadStats r = *this;
  r += o;
  return r;
}

void SetConfig(const Config& cfg) {
  g_write_latency_ns.store(cfg.write_latency_ns, std::memory_order_relaxed);
  g_read_latency_ns.store(cfg.read_latency_ns, std::memory_order_relaxed);
  g_barrier_ns.store(cfg.barrier_ns, std::memory_order_relaxed);
  g_model.store(cfg.model, std::memory_order_relaxed);
  g_persistency.store(cfg.persistency, std::memory_order_relaxed);
  g_coalesce.store(cfg.coalesce_flushes, std::memory_order_relaxed);
}

Config GetConfig() {
  Config cfg;
  cfg.write_latency_ns = g_write_latency_ns.load(std::memory_order_relaxed);
  cfg.read_latency_ns = g_read_latency_ns.load(std::memory_order_relaxed);
  cfg.barrier_ns = g_barrier_ns.load(std::memory_order_relaxed);
  cfg.model = g_model.load(std::memory_order_relaxed);
  cfg.persistency = g_persistency.load(std::memory_order_relaxed);
  cfg.coalesce_flushes = g_coalesce.load(std::memory_order_relaxed);
  return cfg;
}

void SetWriteLatencyNs(std::uint64_t ns) {
  g_write_latency_ns.store(ns, std::memory_order_relaxed);
}

void SetReadLatencyNs(std::uint64_t ns) {
  g_read_latency_ns.store(ns, std::memory_order_relaxed);
}

void SetMemModel(MemModel model, std::uint64_t barrier_ns) {
  g_model.store(model, std::memory_order_relaxed);
  g_barrier_ns.store(barrier_ns, std::memory_order_relaxed);
}

ThreadStats& Stats() { return t_stats; }

void ResetStats() { t_stats = ThreadStats{}; }

std::uint64_t NowNs() {
#if defined(__x86_64__)
  return static_cast<std::uint64_t>(static_cast<double>(__rdtsc()) /
                                    TscPerNs());
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

void SpinNs(std::uint64_t ns) {
  if (ns == 0) return;
#if defined(__x86_64__)
  const std::uint64_t target =
      __rdtsc() + static_cast<std::uint64_t>(static_cast<double>(ns) *
                                             TscPerNs());
  while (__rdtsc() < target) {
    _mm_pause();
  }
#else
  const auto end =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < end) {
  }
#endif
}

void Clflush(const void* addr) {
  if (t_scope.depth > 0) {
    ScopeAddLine(reinterpret_cast<std::uintptr_t>(addr) &
                 ~(kCacheLineSize - 1));
    return;
  }
  const std::uint64_t t0 = NowNs();
  FlushLine(addr);
  t_stats.flush_lines += 1;
  const std::uint64_t lat = g_write_latency_ns.load(std::memory_order_relaxed);
  if (lat != 0) SpinNs(lat);
  t_stats.flush_ns += NowNs() - t0;
}

void FlushRange(const void* addr, std::size_t len) {
  const auto base = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t first = base & ~(kCacheLineSize - 1);
  const std::uintptr_t last = (base + (len ? len : 1) - 1) & ~(kCacheLineSize - 1);
  if (t_scope.depth > 0) {
    // The scope also absorbs the relaxed-persistency per-line ordering
    // fences: the whole scope is one persist epoch, so intra-range order
    // is moot until the drain.
    for (std::uintptr_t line = first; line <= last; line += kCacheLineSize) {
      ScopeAddLine(line);
      if (line != last) t_stats.wc_fences_saved += 1;
    }
    return;
  }
  const std::uint64_t t0 = NowNs();
  const std::uint64_t lat = g_write_latency_ns.load(std::memory_order_relaxed);
  const bool relaxed = g_persistency.load(std::memory_order_relaxed) ==
                       Persistency::kRelaxed;
  for (std::uintptr_t line = first; line <= last; line += kCacheLineSize) {
    FlushLine(reinterpret_cast<const void*>(line));
    t_stats.flush_lines += 1;
    if (lat != 0) SpinNs(lat);
    if (relaxed && line != last) {
      // Relaxed persistency: the flushes themselves may persist out of
      // order, so FAST/FAIR's ordered multi-line persists need a persist
      // barrier between lines (paper §VI). The trailing fence comes from
      // the caller (Persist) or the algorithm's own Fence().
      Sfence();
    }
  }
  t_stats.flush_ns += NowNs() - t0;
}

void Sfence() {
  if (t_scope.depth > 0) {
    // Deferred: the open FlushScope issues one trailing fence at drain.
    t_stats.wc_fences_saved += 1;
    return;
  }
#if defined(__x86_64__)
  _mm_sfence();
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  t_stats.fences += 1;
  // On the emulated non-TSO architecture every store fence is a dmb: the
  // baselines' persist points pay the same barrier cost FAST's explicit
  // FenceIfNotTso() calls do (Fig 5(d) methodology).
  if (g_model.load(std::memory_order_relaxed) == MemModel::kNonTso) {
    t_stats.barriers += 1;
    const std::uint64_t lat = g_barrier_ns.load(std::memory_order_relaxed);
    if (lat != 0) SpinNs(lat);
  }
}

void Persist(const void* addr, std::size_t len) {
  FlushRange(addr, len);
  Sfence();
}

void FenceIfNotTso() {
  if (g_model.load(std::memory_order_relaxed) == MemModel::kTso) return;
  // ARM `dmb ishst` surrogate: real fence for correctness plus the configured
  // cost delta (a dmb is far more expensive than x86's implicit ordering).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  t_stats.barriers += 1;
  const std::uint64_t lat = g_barrier_ns.load(std::memory_order_relaxed);
  if (lat != 0) SpinNs(lat);
}

void AnnotateRead(const void* node) {
  (void)node;
  t_stats.read_annotations += 1;
  t_stats.read_stalls += 1;
  const std::uint64_t lat = g_read_latency_ns.load(std::memory_order_relaxed);
  if (lat != 0) SpinNs(lat);
}

void AnnotateReadGroup(std::size_t nodes) {
  if (nodes == 0) return;
  t_stats.read_annotations += nodes;
  t_stats.read_stalls += 1;
  const std::uint64_t lat = g_read_latency_ns.load(std::memory_order_relaxed);
  if (lat != 0) SpinNs(lat);
}

FlushScope::FlushScope() {
  if (g_persistency.load(std::memory_order_relaxed) != Persistency::kRelaxed ||
      !g_coalesce.load(std::memory_order_relaxed)) {
    return;
  }
  engaged_ = true;
  ++t_scope.depth;
}

FlushScope::~FlushScope() {
  if (!engaged_) return;
  if (--t_scope.depth > 0) return;
  DrainScopeLines();
  if (t_scope.dirty) {
    t_scope.dirty = false;
    Sfence();  // depth is 0: real fence
  }
}

bool FlushScope::Active() { return t_scope.depth > 0; }

}  // namespace fastfair::pm
