// Persistent B+-tree node layout.
//
// A node is one PM allocation of `PageSize` bytes: a 64-byte header followed
// by an array of 16-byte {key, ptr} records.  `PageSize` is a compile-time
// parameter because the Fig 3 experiment sweeps 256 B – 4 KB nodes; 512 B is
// the paper's default.
//
// Layout invariants (see core/node_ops.h for how operations preserve them
// through transient inconsistency):
//
//  * records[0..n) hold sorted keys with non-zero ptrs; records[n].ptr == 0
//    terminates the array (the paper scans `records[i].ptr != NULL`).
//  * A record's key is *valid* iff its ptr differs from its left neighbour's
//    ptr (the duplicate-pointer rule).  records[0] additionally uses
//    hdr.leftmost as its left neighbour in internal nodes; in leaves a zero
//    ptr at slot 0 with a non-zero ptr at slot 1 is a transient *hole* that
//    readers skip (slot-0 inserts/deletes cannot duplicate a left neighbour
//    that does not exist).
//  * Internal node semantics: child(key) = hdr.leftmost if key <
//    records[0].key, else records[i].ptr for the greatest i with
//    records[i].key <= key.  Nodes created by FAIR splits carry no leftmost
//    child; their records[0].key equals the separator that routes to them,
//    so the leftmost branch is unreachable there.
//  * hdr.sibling links nodes left-to-right within a level (B-link), and
//    hdr.fence is the node's persistent low fence: a node owns keys in
//    [hdr.fence, sibling->hdr.fence), so queries move right exactly when
//    key >= sibling->hdr.fence. The fence is explicit (not inferred from
//    records[0].key) because lazy unlink keeps drained-empty nodes linked:
//    an empty node has no first key, but its range assignment must survive
//    so that writers racing the unlink agree with readers on which node
//    owns every key. The leftmost node of each level has fence 0.
//
// All fields written by concurrent/persistent code paths are plain 64-bit
// (or 32-bit) words accessed via std::atomic_ref through a memory policy
// (core/mem_policy.h), never via C++ objects with invariants: after a crash
// the bytes are all that is left.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>

#include "common/defs.h"

namespace fastfair::core {

/// Writer-exclusive / reader-shared spinlock, 4 bytes, trivially
/// reinitializable after a crash (lock state is volatile by design: recovery
/// starts with no threads inside the tree).
class RwSpinLock {
 public:
  void lock() {
    std::uint32_t expected = 0;
    int spins = 0;
    while (!state_.compare_exchange_weak(expected, kWriter,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      expected = 0;
      Backoff(&spins);
    }
  }
  void unlock() { state_.store(0, std::memory_order_release); }

  /// Non-blocking acquire, for paths that hold a parent lock and need a
  /// child lock (the repairer's fence lowering): the normal order is
  /// child -> parent, so blocking here could deadlock against a writer
  /// holding the child and waiting for the parent. Failure is always safe
  /// to resolve by deferring the work.
  bool try_lock() {
    std::uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, kWriter,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void lock_shared() {
    int spins = 0;
    for (;;) {
      std::uint32_t cur = state_.load(std::memory_order_relaxed);
      if (cur < kWriter &&
          state_.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
      Backoff(&spins);
    }
  }
  void unlock_shared() { state_.fetch_sub(1, std::memory_order_release); }

  /// Recovery: lock words are volatile state; after a crash no thread is
  /// inside the tree, so attach simply clears them.
  void Reset() { state_.store(0, std::memory_order_relaxed); }

 private:
  static constexpr std::uint32_t kWriter = 0x8000'0000u;
  static void Backoff(int* spins) {
    if (++*spins < 64) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    } else {
      // Single-core friendliness: let the lock holder run.
      std::this_thread::yield();
      *spins = 0;
    }
  }
  std::atomic<std::uint32_t> state_{0};
};
static_assert(sizeof(RwSpinLock) == 4);

struct Record {
  std::uint64_t key;
  std::uint64_t ptr;
};
static_assert(sizeof(Record) == 16);

/// NodeHeader::flags bit: the node was emptied and unlinked from the leaf
/// chain (paper §4.2 lazy merge). Persistent: a dead node stays dead.
inline constexpr std::uint16_t kNodeDead = 1;

/// NodeHeader::flags bit: a repairer has claimed the dead node's memory for
/// Pool::Free. One-shot (claimed by atomic fetch_or): a parent split can
/// transiently duplicate the separator routing to a dead node across two
/// parents, and both repairers may find "their" copy — only the claim
/// winner frees, so the block can never enter the free list twice.
inline constexpr std::uint16_t kNodeReclaimed = 2;

struct NodeHeader {
  std::uint64_t leftmost;        // child for key < records[0].key (internal)
  std::uint64_t sibling;         // right sibling (Node*), 0 if none
  std::uint64_t fence;           // low fence: node owns [fence, sib->fence)
  std::uint32_t switch_counter;  // even: insert phase, odd: delete phase
  std::uint16_t level;           // 0 = leaf
  std::uint16_t flags;           // kNodeDead | kNodeReclaimed
  RwSpinLock lock;               // volatile; reinitialized on recovery
  std::uint8_t pad[kCacheLineSize - 36];
};
static_assert(sizeof(NodeHeader) == kCacheLineSize);

template <std::size_t PageSize>
struct Node {
  static_assert(PageSize >= 128 && PageSize % kCacheLineSize == 0);

  /// Usable record slots; one extra slot is reserved as the terminator /
  /// shift spill slot (a FAST right-shift of a node holding kCapacity-1
  /// entries writes the new terminator into records[kCapacity]).
  static constexpr int kCapacity =
      static_cast<int>((PageSize - sizeof(NodeHeader)) / sizeof(Record)) - 1;
  static_assert(kCapacity >= 3);

  NodeHeader hdr;
  Record records[kCapacity + 1];

  /// Placement-initializes a zeroed node. Callers persist it before linking.
  /// Byte-level clearing is intentional: after a crash the raw bytes are all
  /// the state there is, so the layout is treated as bytes throughout.
  void Init(std::uint16_t level) {
    std::memset(static_cast<void*>(this), 0, PageSize);
    hdr.level = level;
  }

  bool is_leaf() const { return hdr.level == 0; }
};

// A 512-byte node (the paper's default) must hold >= 24 entries to keep the
// fan-out / height trade-off the evaluation relies on.
static_assert(Node<512>::kCapacity == 27);
static_assert(sizeof(Node<512>) <= 512);

}  // namespace fastfair::core
