// Persistent skip list baseline (Hu et al., ATC'17 log-structured NVMM [33]).
//
// The property the paper leans on: only the *lowest* level of a skip list
// needs failure-atomic updates. An insert persists the new node, then
// commits it with one 8-byte CAS on the predecessor's bottom-level link
// (plus a flush). All upper-level "express lane" links are volatile index
// state, rebuilt on recovery by walking the bottom level. Deletes are
// logical (value := kNoValue, one atomic persisted store), so the structure
// never physically unlinks and searches are naturally lock-free — matching
// the paper's observation that the skip list, like FAST+FAIR, needs no
// logging and no read locks (§5.7), while its per-node pointer chasing
// gives it the worst cache behaviour of the fleet (Fig 5).
//
// Fully concurrent: lock-free searches, CAS-with-retry inserts.

#pragma once

#include <atomic>
#include <cstdint>

#include "common/defs.h"
#include "common/rng.h"
#include "core/node.h"  // core::Record
#include "pm/persist.h"
#include "pm/pool.h"

namespace fastfair::baselines {

class SkipList {
 public:
  static constexpr int kMaxLevel = 20;  // 2^20 expected capacity and beyond

  explicit SkipList(pm::Pool* pool);

  void Insert(Key key, Value value);  // upsert
  bool Remove(Key key);              // logical delete
  Value Search(Key key) const;
  std::size_t Scan(Key min_key, std::size_t max_results,
                   core::Record* out) const;

  std::size_t CountEntries() const;

  /// Recovery: rebuilds the volatile upper levels from the persistent
  /// bottom level.
  void RebuildIndex();

 private:
  struct PNode {
    std::uint64_t key;
    std::atomic<std::uint64_t> val;    // persisted; kNoValue = deleted
    std::atomic<std::uint64_t> next0;  // persisted bottom-level link
    std::int32_t level;                // tower height (1..kMaxLevel)
    std::uint32_t is_head;
    std::atomic<std::uint64_t> nexts[1];  // levels 1..level-1 (volatile)
  };

  static std::size_t NodeSize(int level) {
    return sizeof(PNode) + sizeof(std::atomic<std::uint64_t>) *
                               static_cast<std::size_t>(level > 1 ? level - 1
                                                                  : 0);
  }

  static PNode* Ptr(std::uint64_t p) { return reinterpret_cast<PNode*>(p); }
  static std::uint64_t U64(const PNode* p) {
    return reinterpret_cast<std::uint64_t>(p);
  }
  static std::atomic<std::uint64_t>& NextAt(PNode* n, int lvl) {
    return lvl == 0 ? n->next0 : n->nexts[lvl - 1];
  }

  PNode* AllocNode(Key key, Value value, int level);
  int RandomLevel();

  /// Fills preds/succs at every level for `key`; returns the bottom-level
  /// candidate (first node with node->key >= key) or nullptr.
  PNode* FindPosition(Key key, PNode** preds, PNode** succs) const;

  pm::Pool* pool_;
  PNode* head_;
  mutable std::atomic<std::uint64_t> rng_state_{0x853c49e6748fea9bull};
};

}  // namespace fastfair::baselines
