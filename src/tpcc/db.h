// TPC-C database: one Index instance per table, all of the same kind, plus
// the initial-population loader (TPC-C spec §4.3 sizes, scaled by config).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/index.h"
#include "pm/persist.h"
#include "pm/pool.h"
#include "tpcc/schema.h"

namespace fastfair::tpcc {

struct Config {
  std::uint32_t warehouses = 2;
  std::uint32_t districts_per_wh = 10;
  std::uint32_t customers_per_district = 300;  // spec: 3000; scaled for CI
  std::uint32_t items = 10000;                 // spec: 100000
  std::uint32_t initial_orders_per_district = 300;  // spec: 3000
};

class Db {
 public:
  /// Builds and populates a TPC-C database whose every table is indexed by
  /// an index of `kind` (see MakeIndex). For a range-sharded kind the Db
  /// derives per-table shard boundaries from the packed key encodings
  /// (db.cc), so rows spread across shards despite the small key-space
  /// prefix; a hashed- kind needs no such help (the fibonacci hash spreads
  /// the packed keys by itself) and goes straight to the registry.
  Db(std::string_view kind, const Config& cfg, pm::Pool* pool);

  const Config& config() const { return cfg_; }
  pm::Pool* pool() const { return pool_; }

  /// True when every table index supports concurrent callers — the gate for
  /// the multi-threaded RunMix overload.
  bool supports_concurrency() const;

  Index& warehouse() { return *warehouse_; }
  Index& district() { return *district_; }
  Index& customer() { return *customer_; }
  Index& item() { return *item_; }
  Index& stock() { return *stock_; }
  Index& order() { return *order_; }
  Index& neworder() { return *neworder_; }
  Index& orderline() { return *orderline_; }
  Index& customer_order() { return *customer_order_; }

  /// All nine table indexes (fixed order: warehouse, district, customer,
  /// item, stock, order, neworder, orderline, customer_order) — for
  /// cross-table sweeps like fig6's adaptive-sharding rebalance pass.
  std::vector<Index*> tables() const;

  /// Allocates + persists a row of type T in the pool; returns its address
  /// as an index value.
  template <typename T>
  T* NewRow(const T& init) {
    auto* r = static_cast<T*>(pool_->Alloc(sizeof(T), 8));
    *r = init;
    pm::Persist(r, sizeof(T));
    return r;
  }

  template <typename T>
  static T* Row(Value v) {
    return reinterpret_cast<T*>(v);
  }

  /// Persists a mutated row.
  template <typename T>
  static void PersistRow(T* row) {
    pm::Persist(row, sizeof(T));
  }

  /// Returns a row's memory to the shared pool's reclaimer. The caller must
  /// have removed (and persisted) the last index entry referencing the row
  /// first; concurrent readers still holding the pointer are covered by the
  /// per-transaction epoch guard (pm/reclaim.h).
  template <typename T>
  void FreeRow(T* row) {
    pool_->Free(row, sizeof(T));
  }

 private:
  void Populate();

  Config cfg_;
  pm::Pool* pool_;
  std::unique_ptr<Index> warehouse_, district_, customer_, item_, stock_,
      order_, neworder_, orderline_, customer_order_;
};

}  // namespace fastfair::tpcc
