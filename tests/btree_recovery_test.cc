// Recovery tests: attaching to an existing tree (instant recovery), the
// file-backed restart path, lazy repair of forged crash states at tree
// level (dangling siblings, duplicate-pointer garbage), and the
// FAST+Logging undo path.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/rng.h"
#include "core/btree.h"

namespace fastfair::core {
namespace {

TEST(BTreeRecovery, AttachToExistingTreeInSamePool) {
  pm::Pool pool(256 << 20);
  std::map<Key, Value> model;
  TreeMeta* meta = nullptr;
  {
    BTree tree(&pool);
    meta = tree.meta();
    Rng rng(1);
    for (int i = 0; i < 30000; ++i) {
      const Key k = rng.Next() | 1;
      tree.Insert(k, k + 9);
      model[k] = k + 9;
    }
  }  // handle destroyed; persistent bytes remain
  BTree recovered(&pool, meta);
  EXPECT_EQ(recovered.CountEntries(), model.size());
  for (const auto& [k, v] : model) ASSERT_EQ(recovered.Search(k), v);
  std::string msg;
  EXPECT_TRUE(recovered.CheckInvariants(&msg)) << msg;
  // The recovered tree stays fully writable.
  recovered.Insert(2, 22);
  EXPECT_EQ(recovered.Search(2), 22u);
}

TEST(BTreeRecovery, AttachRejectsWrongPageSize) {
  pm::Pool pool(64 << 20);
  BTree tree(&pool);
  EXPECT_THROW(BTreeT<1024>(&pool, reinterpret_cast<TreeMeta*>(tree.meta())),
               std::runtime_error);
}

TEST(BTreeRecovery, FileBackedRestartRecoversAllData) {
  const std::string path = ::testing::TempDir() + "/ff_btree_restart.pm";
  std::remove(path.c_str());
  constexpr std::size_t kCap = 256 << 20;
  std::map<Key, Value> model;
  {
    pm::Pool::Options po;
    po.capacity = kCap;
    po.file_path = path;
    pm::Pool pool(po);
    BTree tree(&pool);
    pool.SetRoot(tree.meta());
    Rng rng(2);
    for (int i = 0; i < 20000; ++i) {
      const Key k = rng.Next() | 1;
      tree.Insert(k, k ^ 0xabcd);
      model[k] = k ^ 0xabcd;
    }
  }  // process "crash": pool unmapped
  {
    pm::Pool::Options po;
    po.capacity = kCap;
    po.file_path = path;
    pm::Pool pool(po);
    ASSERT_TRUE(pool.reopened());
    auto* meta = static_cast<TreeMeta*>(pool.GetRoot());
    ASSERT_NE(meta, nullptr);
    BTree tree(&pool, meta);
    EXPECT_EQ(tree.CountEntries(), model.size());
    for (const auto& [k, v] : model) ASSERT_EQ(tree.Search(k), v);
    // And it keeps working after recovery.
    tree.Insert(4, 44);
    EXPECT_EQ(tree.Search(4), 44u);
  }
  std::remove(path.c_str());
}

TEST(BTreeRecovery, AdoptsDanglingRootSibling) {
  // Forge the crash state "root split committed, new root never installed":
  // build two trees' worth of content by splitting the root manually.
  pm::Pool pool(64 << 20);
  using Tree = BTreeT<512>;
  using NodeT = Tree::NodeT;
  using Ops = Tree::Ops;
  Tree tree(&pool);
  RealMem m;
  // Fill the root (a leaf) to capacity through the public API, staying
  // below the split threshold.
  for (int i = 0; i < Tree::kNodeCapacity; ++i) {
    tree.Insert(static_cast<Key>((i + 1) * 10),
                static_cast<Value>((i + 1) * 10 + 1));
  }
  ASSERT_EQ(tree.Height(), 1);
  // Manually split the root leaf the FAIR way, then "crash" before the new
  // root exists: reattach and expect AdoptRootChain to rebuild the parent.
  auto* root = reinterpret_cast<NodeT*>(
      std::atomic_ref<std::uint64_t>(tree.meta()->root).load());
  auto* sibling = static_cast<NodeT*>(pool.Alloc(sizeof(NodeT), 64));
  sibling->Init(0);
  const int cnt = Ops::CountRaw(m, root);
  Ops::SplitCopy(m, root, sibling, cnt / 2, cnt);
  Ops::CommitSplit(m, root, sibling, cnt / 2);

  BTree recovered(&pool, tree.meta());
  EXPECT_EQ(recovered.Height(), 2);  // new root adopted the chain
  for (int i = 0; i < Tree::kNodeCapacity; ++i) {
    const Key k = static_cast<Key>((i + 1) * 10);
    ASSERT_EQ(recovered.Search(k), k + 1);
  }
  std::string msg;
  EXPECT_TRUE(recovered.CheckInvariants(&msg)) << msg;
}

TEST(BTreeRecovery, WriterLazilyFixesForgedDuplicatePointer) {
  pm::Pool pool(64 << 20);
  using Tree = BTreeT<512>;
  using NodeT = Tree::NodeT;
  Tree tree(&pool);
  for (Key k = 1; k <= 10; ++k) tree.Insert(k * 10, k * 10 + 1);
  // Forge crashed-insert garbage directly in the root leaf.
  auto* root = reinterpret_cast<NodeT*>(
      std::atomic_ref<std::uint64_t>(tree.meta()->root).load());
  root->records[3].key = 31;  // garbage key between 30 and 40
  root->records[3].ptr = root->records[2].ptr;  // duplicate: invalid
  // ... but records beyond shift one right, emulating the torn shift.
  // (Readers tolerate it:)
  EXPECT_EQ(tree.Search(30), 31u);
  EXPECT_EQ(tree.Search(31), kNoValue);
  // A writer touching the leaf repairs it en passant.
  tree.Insert(55, 551);
  EXPECT_EQ(tree.Search(30), 31u);
  EXPECT_EQ(tree.Search(55), 551u);
  std::string msg;
  EXPECT_TRUE(tree.CheckInvariants(&msg)) << msg;
}

TEST(BTreeRecovery, LoggingModeUndoesTornSplitViaLog) {
  // FAST+Logging: if the undo log is active at attach time, the logged
  // node image is restored. Forge that state by copying a node image into
  // the log area and marking it active, then mutating the node.
  pm::Pool pool(64 << 20);
  Options opts;
  opts.rebalance = RebalanceMode::kLogging;
  using Tree = BTreeT<512>;
  using NodeT = Tree::NodeT;
  Tree tree(&pool, opts);
  for (Key k = 1; k <= 10; ++k) tree.Insert(k * 10, k * 10 + 1);
  auto* root = reinterpret_cast<NodeT*>(
      std::atomic_ref<std::uint64_t>(tree.meta()->root).load());

  struct LogView {  // mirrors BTreeT::SplitLog layout
    std::uint64_t active;
    std::uint8_t image[512];
  };
  auto* log = reinterpret_cast<LogView*>(tree.meta()->split_log);
  ASSERT_NE(log, nullptr);
  std::memcpy(log->image, root, 512);
  log->active = reinterpret_cast<std::uint64_t>(root);
  // "Torn split": clobber the node after the log point.
  root->records[0].key = 9999;
  root->records[5].ptr = 0;

  Tree recovered(&pool, tree.meta(), opts);
  for (Key k = 1; k <= 10; ++k) ASSERT_EQ(recovered.Search(k * 10), k * 10 + 1);
  std::string msg;
  EXPECT_TRUE(recovered.CheckInvariants(&msg)) << msg;
}

TEST(BTreeRecovery, RecoveredTreeSupportsFullWorkload) {
  pm::Pool pool(256 << 20);
  TreeMeta* meta;
  {
    BTree tree(&pool);
    meta = tree.meta();
    for (Key k = 1; k <= 20000; ++k) tree.Insert(k, 2 * k + 1);
  }
  BTree tree(&pool, meta);
  std::map<Key, Value> model;
  for (Key k = 1; k <= 20000; ++k) model[k] = 2 * k + 1;
  Rng rng(9);
  for (int i = 0; i < 30000; ++i) {
    const Key k = rng.NextBounded(40000) + 1;
    if (rng.NextBounded(3) == 0) {
      const bool in_model = model.erase(k) > 0;
      ASSERT_EQ(tree.Remove(k), in_model);
    } else {
      tree.Insert(k, 2 * k + 2);
      model[k] = 2 * k + 2;
    }
  }
  ASSERT_EQ(tree.CountEntries(), model.size());
  for (const auto& [k, v] : model) ASSERT_EQ(tree.Search(k), v);
}

}  // namespace
}  // namespace fastfair::core
