// Tests for the wB+-tree baseline: slot+bitmap protocol behaviour, flush
// accounting (the property Fig 5(a) measures), undo-logged splits, and
// model equivalence.

#include <gtest/gtest.h>

#include <map>

#include "baselines/wbtree/wbtree.h"
#include "common/rng.h"

namespace fastfair::baselines {
namespace {

TEST(WBTree, EmptyTree) {
  pm::Pool pool(64 << 20);
  WBTree t(&pool);
  EXPECT_EQ(t.Search(1), kNoValue);
  EXPECT_FALSE(t.Remove(1));
  EXPECT_EQ(t.Height(), 1);
  EXPECT_EQ(t.CountEntries(), 0u);
}

TEST(WBTree, InsertSearchRemove) {
  pm::Pool pool(64 << 20);
  WBTree t(&pool);
  t.Insert(10, 100);
  t.Insert(5, 50);
  t.Insert(20, 200);
  EXPECT_EQ(t.Search(5), 50u);
  EXPECT_EQ(t.Search(10), 100u);
  EXPECT_EQ(t.Search(20), 200u);
  EXPECT_EQ(t.Search(15), kNoValue);
  EXPECT_TRUE(t.Remove(10));
  EXPECT_EQ(t.Search(10), kNoValue);
  EXPECT_EQ(t.CountEntries(), 2u);
}

TEST(WBTree, UpsertInPlace) {
  pm::Pool pool(64 << 20);
  WBTree t(&pool);
  t.Insert(1, 11);
  t.Insert(1, 12);
  EXPECT_EQ(t.Search(1), 12u);
  EXPECT_EQ(t.CountEntries(), 1u);
}

TEST(WBTree, SplitsGrowHeight) {
  pm::Pool pool(256 << 20);
  WBTree t(&pool);
  for (Key k = 1; k <= 20000; ++k) t.Insert(k, k + 1);
  EXPECT_GE(t.Height(), 2);
  for (Key k = 1; k <= 20000; k += 13) ASSERT_EQ(t.Search(k), k + 1);
  EXPECT_EQ(t.CountEntries(), 20000u);
}

TEST(WBTree, ModelEquivalence) {
  pm::Pool pool(512 << 20);
  WBTree t(&pool);
  std::map<Key, Value> model;
  Rng rng(21);
  for (int i = 0; i < 50000; ++i) {
    const Key k = rng.NextBounded(25000) + 1;
    if (rng.NextBounded(5) == 0) {
      const bool in_model = model.erase(k) > 0;
      ASSERT_EQ(t.Remove(k), in_model);
    } else {
      const Value v = k * 7 + static_cast<Value>(i % 3) + 1;
      t.Insert(k, v);
      model[k] = v;
    }
  }
  for (const auto& [k, v] : model) ASSERT_EQ(t.Search(k), v);
  ASSERT_EQ(t.CountEntries(), model.size());
}

TEST(WBTree, ScanIsSortedDespiteUnsortedStorage) {
  pm::Pool pool(256 << 20);
  WBTree t(&pool);
  Rng rng(33);
  std::map<Key, Value> model;
  for (int i = 0; i < 10000; ++i) {
    const Key k = rng.Next() | 1;
    t.Insert(k, k + 2);
    model[k] = k + 2;
  }
  std::vector<core::Record> out(500);
  const Key start = model.begin()->first + 1;
  const std::size_t n = t.Scan(start, out.size(), out.data());
  auto it = model.upper_bound(start - 1);
  for (std::size_t i = 0; i < n; ++i, ++it) {
    ASSERT_EQ(out[i].key, it->first);
    ASSERT_EQ(out[i].ptr, it->second);
  }
}

TEST(WBTree, InsertCostsAtLeastFourFlushes) {
  // The paper: "wB+-tree calls at least four cache line flushes when we
  // insert data into a tree node" — the slot+bitmap protocol's floor.
  pm::Pool pool(64 << 20);
  WBTree t(&pool);
  t.Insert(500, 1);  // warm the root
  pm::ResetStats();
  const auto before = pm::Stats();
  t.Insert(100, 2);  // non-split insert
  const auto delta = pm::Stats() - before;
  EXPECT_GE(delta.flush_lines, 4u);
}

TEST(WBTree, InsertFlushFloorHoldsOnAverage) {
  pm::Pool pool(512 << 20);
  WBTree t(&pool);
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) t.Insert(rng.Next() | 1, 1u + static_cast<Value>(i));
  pm::ResetStats();
  const auto before = pm::Stats();
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) t.Insert(rng.Next() | 1, 7u + static_cast<Value>(i));
  const auto delta = pm::Stats() - before;
  EXPECT_GE(static_cast<double>(delta.flush_lines) / kN, 4.0);
}

TEST(WBTree, DenseAscendingAndDescending) {
  pm::Pool pool(256 << 20);
  for (const bool ascending : {true, false}) {
    WBTree t(&pool);
    for (int i = 0; i < 5000; ++i) {
      const Key k = ascending ? static_cast<Key>(i + 1)
                              : static_cast<Key>(5000 - i);
      t.Insert(k, k * 2 + 1);
    }
    for (Key k = 1; k <= 5000; ++k) ASSERT_EQ(t.Search(k), k * 2 + 1);
  }
}

}  // namespace
}  // namespace fastfair::baselines
