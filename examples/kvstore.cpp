// kvstore: a durable key-value store that survives process restarts.
//
// This is the scenario the paper's introduction motivates: applications
// getting durability straight from byte-addressable PM, without a
// filesystem or block layer in the way. The pool is a file mapped at a
// fixed address; the tree's meta block is registered as the pool root, so
// a fresh process finds everything instantly — no log replay, no rebuild.
//
//   $ ./kvstore put alice 31
//   $ ./kvstore put bob 27
//   $ ./kvstore get alice        # -> 31 (from a brand-new process!)
//   $ ./kvstore del alice
//   $ ./kvstore list
//   $ ./kvstore demo             # scripted restart demonstration
//
// Keys here are strings hashed to 64-bit (with the string kept in PM for
// listing); values are integers.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/btree.h"

namespace {

using namespace fastfair;

constexpr const char* kPoolPath = "/tmp/fastfair_kvstore.pm";
constexpr std::size_t kPoolSize = std::size_t{256} << 20;

// A PM record: the value and the original key string (for listing).
struct Entry {
  std::uint64_t value;
  std::uint32_t key_len;
  char key[];  // flexible: allocated to fit
};

Key HashKey(const std::string& s) {
  // FNV-1a; collisions are theoretically possible — a production store
  // would chain records; for the example we accept the 2^-64 risk.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  return h | 1;  // never 0
}

struct Store {
  pm::Pool pool;
  core::BTree* tree = nullptr;
  alignas(8) unsigned char tree_storage[sizeof(core::BTree)];

  Store()
      : pool([] {
          pm::Pool::Options o;
          o.capacity = kPoolSize;
          o.file_path = kPoolPath;
          o.persist_metadata = true;  // allocator survives crashes too
          return o;
        }()) {
    if (pool.reopened()) {
      auto* meta = static_cast<core::TreeMeta*>(pool.GetRoot());
      tree = ::new (tree_storage) core::BTree(&pool, meta);
      std::printf("[kvstore] recovered existing store (%zu entries)\n",
                  tree->CountEntries());
    } else {
      tree = ::new (tree_storage) core::BTree(&pool);
      pool.SetRoot(tree->meta());
      std::printf("[kvstore] created new store at %s\n", kPoolPath);
    }
  }
  ~Store() { std::destroy_at(tree); }

  void Put(const std::string& key, std::uint64_t value) {
    auto* e = static_cast<Entry*>(
        pool.Alloc(sizeof(Entry) + key.size(), 8));
    e->value = value;
    e->key_len = static_cast<std::uint32_t>(key.size());
    std::memcpy(e->key, key.data(), key.size());
    pm::Persist(e, sizeof(Entry) + key.size());  // record durable first
    tree->Insert(HashKey(key), reinterpret_cast<Value>(e));  // then indexed
  }

  const Entry* Get(const std::string& key) const {
    return reinterpret_cast<const Entry*>(tree->Search(HashKey(key)));
  }

  bool Del(const std::string& key) { return tree->Remove(HashKey(key)); }

  void List() const {
    std::vector<core::Record> out(tree->CountEntries() + 1);
    const std::size_t n = tree->Scan(0, out.size(), out.data());
    for (std::size_t i = 0; i < n; ++i) {
      const auto* e = reinterpret_cast<const Entry*>(out[i].ptr);
      std::printf("  %.*s = %llu\n", static_cast<int>(e->key_len), e->key,
                  static_cast<unsigned long long>(e->value));
    }
    std::printf("[kvstore] %zu entries\n", n);
  }
};

int Demo() {
  std::remove(kPoolPath);
  {
    Store s;
    s.Put("alice", 31);
    s.Put("bob", 27);
    s.Put("carol", 45);
    std::printf("[demo] wrote 3 entries, 'crashing' now (no shutdown)\n");
  }  // destructor unmaps; file bytes are what a crash would leave
  {
    Store s;  // brand-new "process"
    const auto* e = s.Get("alice");
    std::printf("[demo] after restart: alice = %llu\n",
                e != nullptr ? static_cast<unsigned long long>(e->value)
                             : 0ull);
    s.Del("bob");
    s.List();
  }
  std::remove(kPoolPath);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "demo") return Demo();
  if (argc >= 3 && std::string(argv[1]) == "get") {
    Store s;
    const auto* e = s.Get(argv[2]);
    if (e == nullptr) {
      std::printf("(not found)\n");
      return 1;
    }
    std::printf("%llu\n", static_cast<unsigned long long>(e->value));
    return 0;
  }
  if (argc >= 4 && std::string(argv[1]) == "put") {
    Store s;
    s.Put(argv[2], std::strtoull(argv[3], nullptr, 10));
    return 0;
  }
  if (argc >= 3 && std::string(argv[1]) == "del") {
    Store s;
    return s.Del(argv[2]) ? 0 : 1;
  }
  if (argc >= 2 && std::string(argv[1]) == "list") {
    Store s;
    s.List();
    return 0;
  }
  std::printf("usage: kvstore put <key> <int> | get <key> | del <key> | "
              "list | demo\n");
  return 2;
}
