// Quickstart: the five-minute tour of the FAST+FAIR B+-tree public API.
//
//   $ ./quickstart
//
// Creates a tree in an emulated-PM pool, performs point and range
// operations, and prints what happened. See kvstore.cpp for real
// file-backed persistence across restarts.

#include <cstdio>

#include "core/btree.h"

int main() {
  using namespace fastfair;

  // 1. A PM pool: DRAM emulating persistent memory (anonymous mapping).
  //    All tree nodes are allocated from it; flushes and fences are real.
  pm::Pool pool(std::size_t{1} << 30);  // 1 GiB

  // 2. A FAST+FAIR B+-tree with the paper's defaults: 512-byte nodes,
  //    lock-free search, FAIR in-place splits, linear in-node search.
  core::BTree tree(&pool);

  // 3. Inserts are upserts. Values are opaque non-zero 64-bit words —
  //    typically pointers to your records (value 0 means "not found").
  for (Key k = 1; k <= 1000; ++k) {
    tree.Insert(k, /*value=*/k * 2 + 1);
  }
  std::printf("inserted 1000 keys, tree height: %d\n", tree.Height());

  // 4. Point lookups are non-blocking: no read latches, ever.
  std::printf("search(500) = %llu (expect %llu)\n",
              static_cast<unsigned long long>(tree.Search(500)),
              static_cast<unsigned long long>(500 * 2 + 1));

  // 5. Sorted range scans via the leaf sibling chain.
  core::Record out[10];
  const std::size_t n = tree.Scan(/*min_key=*/991, /*max_results=*/10, out);
  std::printf("scan from 991: ");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%llu ", static_cast<unsigned long long>(out[i].key));
  }
  std::printf("\n");

  // 6. Deletes shift in place; no rebalancing logs anywhere.
  tree.Remove(500);
  std::printf("after remove, search(500) = %llu (expect 0)\n",
              static_cast<unsigned long long>(tree.Search(500)));

  // 7. Every operation above was persisted as it returned: check the
  //    flush/fence accounting the evaluation harness uses.
  const auto& stats = pm::Stats();
  std::printf("cache lines flushed: %llu, fences: %llu\n",
              static_cast<unsigned long long>(stats.flush_lines),
              static_cast<unsigned long long>(stats.fences));
  return 0;
}
