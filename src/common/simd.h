// Runtime-dispatched SIMD kernels for the hot search paths (DESIGN.md §9).
//
// FAST+FAIR's lock-free readers walk node records one slot at a time so
// every load can be validated (StableRecord + switch recheck). The SIMD
// layer keeps that protocol but vectorizes the *candidate location* step:
// take a double-read-stabilized snapshot of the record area, movemask a
// vector key compare over it, then re-validate only the winning slot
// through the scalar policy loads. This header supplies the primitive
// kernels; core/node_search_simd.h builds the node protocol on top.
//
// Five ISA paths — scalar / SSE2 / AVX2 / AVX-512 / NEON — compiled with
// per-function target attributes (no global -march), selected once at
// startup from cpuid and overridable with FASTFAIR_SIMD=scalar|sse2|avx2|
// avx512|neon (unsupported / unknown values clamp to scalar; unset or
// "auto" picks the best the CPU offers). The scalar path is the reference
// implementation; every vector kernel must be bit-identical to it on the
// same input (tests/simd_search_test.cc enforces this per ISA).
//
// Contract notes shared by all kernels:
//  * u64 Find* kernels scan [from, to) of an array the caller guarantees
//    readable up to RoundUpSlots(to) elements — snapshot arrays are padded
//    for exactly this reason. Gt is an unsigned comparison.
//  * ByteEqMask requires 64 readable bytes at `a` even when n < 64 (the
//    callers point it at in-struct arrays with trailing members).
//  * CollectEqU32 has no padding requirement (vector body + scalar tail).
//  * SnapshotRecords/VerifyRecords read a {key, ptr} record array (16-byte
//    stride) with plain vector loads: only valid for memory policies with
//    coherent raw loads (RealMem), never for crash-sim shadow policies.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#if defined(__x86_64__) || defined(_M_X64)
#define FASTFAIR_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define FASTFAIR_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace fastfair::simd {

inline constexpr std::size_t kNpos = ~std::size_t{0};

enum class Isa : std::uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3,  // requires avx512f + avx512bw
  kNeon = 4,
};

/// Short lowercase name ("scalar", "sse2", ...), the same spelling
/// FASTFAIR_SIMD and --simd accept.
const char* IsaName(Isa isa);

/// Parses an ISA name (also accepts "" and "auto" -> best supported).
/// Returns false on an unknown spelling.
bool ParseIsa(std::string_view s, Isa* out);

/// True when this binary carries code for `isa` (e.g. NEON never on x86).
bool IsaCompiled(Isa isa);

/// IsaCompiled and the running CPU reports the feature.
bool IsaSupported(Isa isa);

/// Best supported ISA in preference order avx512 > avx2 > sse2 > neon >
/// scalar.
Isa BestSupportedIsa();

/// The process-wide active ISA: resolved once from FASTFAIR_SIMD (or
/// BestSupportedIsa when unset/auto) on first call, then cached. All
/// dispatch points (tree construction, BucketByShard, FindEntry) read this.
Isa ActiveIsa();

/// Test/bench hook: overrides ActiveIsa. Unsupported requests clamp to
/// scalar. Returns the ISA actually installed. Indexes constructed before
/// the call keep their already-resolved function pointers.
Isa ForceIsa(Isa isa);

/// Number of u64 lanes a kernel touches per block for `isa` (snapshot
/// arrays must be padded to a multiple of the largest, kMaxU64Lanes).
inline constexpr std::size_t kMaxU64Lanes = 8;

/// Rounds a slot count up to the snapshot padding boundary.
constexpr std::size_t RoundUpSlots(std::size_t n) {
  return (n + kMaxU64Lanes - 1) & ~(kMaxU64Lanes - 1);
}

/// RecordEqZero/RecordGtZero masks place record l's bit at position
/// kMaskStride * l: the stride-2 layout is the natural shape of an
/// interleaved {key, ptr} vector compare (key lanes are the even lanes),
/// so wide ISAs skip the deinterleave shuffle entirely.
inline constexpr std::size_t kMaskStride = 2;

// ---------------------------------------------------------------------------
// Scalar kernels: the reference implementation.
// ---------------------------------------------------------------------------

struct ScalarKernels {
  static constexpr Isa kIsa = Isa::kScalar;

  /// Deinterleaves nrec {key, ptr} records (16-byte stride) at `recs` into
  /// keys[] / ptrs[].
  static void CopyRecords(const void* recs, std::size_t nrec,
                          std::uint64_t* keys, std::uint64_t* ptrs) {
    const auto* r = static_cast<const std::uint64_t*>(recs);
    for (std::size_t i = 0; i < nrec; ++i) {
      keys[i] = r[2 * i];
      ptrs[i] = r[2 * i + 1];
    }
  }

  /// Re-reads the record area and compares against a previous CopyRecords
  /// result; false means a concurrent writer moved something in between.
  static bool VerifyRecords(const void* recs, std::size_t nrec,
                            const std::uint64_t* keys,
                            const std::uint64_t* ptrs) {
    const auto* r = static_cast<const std::uint64_t*>(recs);
    std::uint64_t diff = 0;
    for (std::size_t i = 0; i < nrec; ++i) {
      diff |= keys[i] ^ r[2 * i];
      diff |= ptrs[i] ^ r[2 * i + 1];
    }
    return diff == 0;
  }

  /// First i in [from, to) with a[i] == v, else kNpos.
  static std::size_t FindFirstEq(const std::uint64_t* a, std::size_t from,
                                 std::size_t to, std::uint64_t v) {
    for (std::size_t i = from; i < to; ++i)
      if (a[i] == v) return i;
    return kNpos;
  }

  /// First i in [from, to) with a[i] > v (unsigned), else kNpos.
  static std::size_t FindFirstGt(const std::uint64_t* a, std::size_t from,
                                 std::size_t to, std::uint64_t v) {
    for (std::size_t i = from; i < to; ++i)
      if (a[i] > v) return i;
    return kNpos;
  }

  /// First i in [from, to) with a[i] == 0, else kNpos.
  static std::size_t FindFirstZero(const std::uint64_t* a, std::size_t from,
                                   std::size_t to) {
    return FindFirstEq(a, from, to, 0);
  }

  /// Last i in [from, to) with a[i] == v, else kNpos.
  static std::size_t FindLastEq(const std::uint64_t* a, std::size_t from,
                                std::size_t to, std::uint64_t v) {
    for (std::size_t i = to; i > from; --i)
      if (a[i - 1] == v) return i - 1;
    return kNpos;
  }

  /// Bit i set iff a[i] == v, for i in [0, n), n <= 64. (The scalar path
  /// reads only n bytes; vector paths read a full 64-byte window.)
  static std::uint64_t ByteEqMask(const std::uint8_t* a, std::size_t n,
                                  std::uint8_t v) {
    std::uint64_t m = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (a[i] == v) m |= std::uint64_t{1} << i;
    return m;
  }

  /// Appends every i in [0, n) with a[i] == v to out; returns the count.
  static std::size_t CollectEqU32(const std::uint32_t* a, std::size_t n,
                                  std::uint32_t v, std::uint32_t* out) {
    std::size_t c = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (a[i] == v) out[c++] = static_cast<std::uint32_t>(i);
    return c;
  }

  /// Records a kernel block can mask in one shot (see RecordEqZero).
  static constexpr std::size_t kRecWidth = 2;

  /// Direct masks over kRecWidth interleaved {key, ptr} records at r (no
  /// snapshot): bit 2l of *eq set iff r[2l] == key, bit 2l of *zero set
  /// iff r[2l + 1] == 0. The stride-2 bit layout (record l at bit 2l,
  /// kMaskStride) lets wide ISAs compare the interleaved record bytes
  /// in place — one vector load, no cross-lane shuffles — and hand back
  /// the compare mask with the off-lanes masked off. The caller owns
  /// making something of a possibly-torn observation
  /// (node_search_simd.h revalidates every candidate through the scalar
  /// policy loads).
  static void RecordEqZero(const std::uint64_t* r, std::uint64_t key,
                           unsigned* eq, unsigned* zero) {
    unsigned e = 0, z = 0;
    for (std::size_t l = 0; l < kRecWidth; ++l) {
      if (r[2 * l] == key) e |= 1u << (2 * l);
      if (r[2 * l + 1] == 0) z |= 1u << (2 * l);
    }
    *eq = e;
    *zero = z;
  }

  /// Same shape with an unsigned > compare on the keys (internal-node
  /// boundary location).
  static void RecordGtZero(const std::uint64_t* r, std::uint64_t key,
                           unsigned* gt, unsigned* zero) {
    unsigned g = 0, z = 0;
    for (std::size_t l = 0; l < kRecWidth; ++l) {
      if (r[2 * l] > key) g |= 1u << (2 * l);
      if (r[2 * l + 1] == 0) z |= 1u << (2 * l);
    }
    *gt = g;
    *zero = z;
  }
};

#if defined(FASTFAIR_SIMD_X86)

// ---------------------------------------------------------------------------
// SSE2 kernels (baseline x86-64: always compiled, always supported).
// ---------------------------------------------------------------------------

struct Sse2Kernels {
  static constexpr Isa kIsa = Isa::kSse2;

  // SSE2 lacks 64-bit integer compares; equality is two 32-bit half
  // compares ANDed, unsigned greater-than is the hi>hi | (hi==hi & lo>lo)
  // composition over bias-shifted 32-bit signed compares.
  static __m128i CmpEq64(__m128i a, __m128i b) {
    const __m128i eq32 = _mm_cmpeq_epi32(a, b);
    // 0xB1 swaps the 32-bit halves of each 64-bit lane.
    return _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, 0xB1));
  }

  static __m128i CmpGtU64(__m128i a, __m128i b) {
    const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
    const __m128i gt32 = _mm_cmpgt_epi32(_mm_xor_si128(a, bias),
                                         _mm_xor_si128(b, bias));
    const __m128i eq32 = _mm_cmpeq_epi32(a, b);
    const __m128i gt_hi = _mm_shuffle_epi32(gt32, 0xF5);  // hi half -> both
    const __m128i gt_lo = _mm_shuffle_epi32(gt32, 0xA0);  // lo half -> both
    const __m128i eq_hi = _mm_shuffle_epi32(eq32, 0xF5);
    return _mm_or_si128(gt_hi, _mm_and_si128(eq_hi, gt_lo));
  }

  static unsigned Mask64(__m128i m) {
    return static_cast<unsigned>(_mm_movemask_pd(_mm_castsi128_pd(m)));
  }

  static void CopyRecords(const void* recs, std::size_t nrec,
                          std::uint64_t* keys, std::uint64_t* ptrs) {
    const auto* r = static_cast<const __m128i*>(recs);
    std::size_t i = 0;
    for (; i + 2 <= nrec; i += 2) {
      const __m128i r0 = _mm_loadu_si128(r + i);      // k0 p0
      const __m128i r1 = _mm_loadu_si128(r + i + 1);  // k1 p1
      _mm_storeu_si128(reinterpret_cast<__m128i*>(keys + i),
                       _mm_unpacklo_epi64(r0, r1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(ptrs + i),
                       _mm_unpackhi_epi64(r0, r1));
    }
    if (i < nrec) ScalarKernels::CopyRecords(r + i, nrec - i, keys + i,
                                             ptrs + i);
  }

  static bool VerifyRecords(const void* recs, std::size_t nrec,
                            const std::uint64_t* keys,
                            const std::uint64_t* ptrs) {
    const auto* r = static_cast<const __m128i*>(recs);
    __m128i acc = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 2 <= nrec; i += 2) {
      const __m128i r0 = _mm_loadu_si128(r + i);
      const __m128i r1 = _mm_loadu_si128(r + i + 1);
      const __m128i k =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
      const __m128i p =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(ptrs + i));
      acc = _mm_or_si128(acc, _mm_xor_si128(k, _mm_unpacklo_epi64(r0, r1)));
      acc = _mm_or_si128(acc, _mm_xor_si128(p, _mm_unpackhi_epi64(r0, r1)));
    }
    bool ok = Mask64(CmpEq64(acc, _mm_setzero_si128())) == 0x3u;
    if (i < nrec)
      ok = ScalarKernels::VerifyRecords(r + i, nrec - i, keys + i, ptrs + i) &&
           ok;
    return ok;
  }

  static std::size_t FindFirstEq(const std::uint64_t* a, std::size_t from,
                                 std::size_t to, std::uint64_t v) {
    if (from >= to) return kNpos;
    const __m128i vv = _mm_set1_epi64x(static_cast<long long>(v));
    for (std::size_t i = from & ~std::size_t{1}; i < to; i += 2) {
      unsigned m = Mask64(CmpEq64(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), vv));
      if (i < from) m &= ~0u << (from - i);
      if (m != 0) {
        const std::size_t idx = i + static_cast<std::size_t>(
                                        __builtin_ctz(m));
        return idx < to ? idx : kNpos;
      }
    }
    return kNpos;
  }

  static std::size_t FindFirstGt(const std::uint64_t* a, std::size_t from,
                                 std::size_t to, std::uint64_t v) {
    if (from >= to) return kNpos;
    const __m128i vv = _mm_set1_epi64x(static_cast<long long>(v));
    for (std::size_t i = from & ~std::size_t{1}; i < to; i += 2) {
      unsigned m = Mask64(CmpGtU64(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), vv));
      if (i < from) m &= ~0u << (from - i);
      if (m != 0) {
        const std::size_t idx = i + static_cast<std::size_t>(
                                        __builtin_ctz(m));
        return idx < to ? idx : kNpos;
      }
    }
    return kNpos;
  }

  static std::size_t FindFirstZero(const std::uint64_t* a, std::size_t from,
                                   std::size_t to) {
    return FindFirstEq(a, from, to, 0);
  }

  static std::size_t FindLastEq(const std::uint64_t* a, std::size_t from,
                                std::size_t to, std::uint64_t v) {
    if (from >= to) return kNpos;
    const __m128i vv = _mm_set1_epi64x(static_cast<long long>(v));
    const std::size_t first_blk = from & ~std::size_t{1};
    std::size_t i = (to - 1) & ~std::size_t{1};
    for (;; i -= 2) {
      unsigned m = Mask64(CmpEq64(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), vv));
      if (i + 2 > to) m &= (1u << (to - i)) - 1u;
      if (i < from) m &= ~0u << (from - i);
      if (m != 0)
        return i + static_cast<std::size_t>(31 - __builtin_clz(m));
      if (i == first_blk) return kNpos;
    }
  }

  static std::uint64_t ByteEqMask(const std::uint8_t* a, std::size_t n,
                                  std::uint8_t v) {
    const __m128i vv = _mm_set1_epi8(static_cast<char>(v));
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < 64; i += 16) {
      const unsigned m = static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), vv)));
      mask |= static_cast<std::uint64_t>(m) << i;
    }
    return n >= 64 ? mask : mask & ((std::uint64_t{1} << n) - 1);
  }

  static std::size_t CollectEqU32(const std::uint32_t* a, std::size_t n,
                                  std::uint32_t v, std::uint32_t* out) {
    const __m128i vv = _mm_set1_epi32(static_cast<int>(v));
    std::size_t c = 0, i = 0;
    for (; i + 4 <= n; i += 4) {
      unsigned m = static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(
          _mm_cmpeq_epi32(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)), vv))));
      while (m != 0) {
        out[c++] = static_cast<std::uint32_t>(
            i + static_cast<std::size_t>(__builtin_ctz(m)));
        m &= m - 1;
      }
    }
    for (; i < n; ++i)
      if (a[i] == v) out[c++] = static_cast<std::uint32_t>(i);
    return c;
  }

  static constexpr std::size_t kRecWidth = 2;

  // movemask_pd of an in-place compare already yields interleaved bit
  // positions: r0 lanes are {k0, p0}, r1 lanes are {k1, p1}, so record 0
  // masks land at bit 0 and record 1 masks at bit 2 with no spreading.
  static void RecordEqZero(const std::uint64_t* r, std::uint64_t key,
                           unsigned* eq, unsigned* zero) {
    const __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r));
    const __m128i r1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + 2));
    const __m128i bk = _mm_set1_epi64x(static_cast<long long>(key));
    const __m128i zz = _mm_setzero_si128();
    const unsigned e0 = Mask64(CmpEq64(r0, bk));
    const unsigned e1 = Mask64(CmpEq64(r1, bk));
    const unsigned z0 = Mask64(CmpEq64(r0, zz));
    const unsigned z1 = Mask64(CmpEq64(r1, zz));
    *eq = (e0 & 1u) | ((e1 & 1u) << 2);
    *zero = ((z0 & 2u) | ((z1 & 2u) << 2)) >> 1;
  }

  static void RecordGtZero(const std::uint64_t* r, std::uint64_t key,
                           unsigned* gt, unsigned* zero) {
    const __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r));
    const __m128i r1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + 2));
    const __m128i bk = _mm_set1_epi64x(static_cast<long long>(key));
    const __m128i zz = _mm_setzero_si128();
    const unsigned g0 = Mask64(CmpGtU64(r0, bk));
    const unsigned g1 = Mask64(CmpGtU64(r1, bk));
    const unsigned z0 = Mask64(CmpEq64(r0, zz));
    const unsigned z1 = Mask64(CmpEq64(r1, zz));
    *gt = (g0 & 1u) | ((g1 & 1u) << 2);
    *zero = ((z0 & 2u) | ((z1 & 2u) << 2)) >> 1;
  }
};

// ---------------------------------------------------------------------------
// AVX2 kernels: 4 keys per 256-bit compare.
// ---------------------------------------------------------------------------

struct Avx2Kernels {
  static constexpr Isa kIsa = Isa::kAvx2;

  __attribute__((target("avx2"))) static void CopyRecords(
      const void* recs, std::size_t nrec, std::uint64_t* keys,
      std::uint64_t* ptrs) {
    const auto* r = static_cast<const std::uint64_t*>(recs);
    std::size_t i = 0;
    for (; i + 4 <= nrec; i += 4) {
      const __m256i r0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(r + 2 * i));  // k0 p0 k1 p1
      const __m256i r1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(r + 2 * i + 4));  // k2 p2 k3 p3
      // unpacklo -> [k0 k2 k1 k3]; permute lanes (0,2,1,3) restores order.
      const __m256i lo = _mm256_unpacklo_epi64(r0, r1);
      const __m256i hi = _mm256_unpackhi_epi64(r0, r1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i),
                          _mm256_permute4x64_epi64(lo, 0xD8));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(ptrs + i),
                          _mm256_permute4x64_epi64(hi, 0xD8));
    }
    if (i < nrec)
      ScalarKernels::CopyRecords(r + 2 * i, nrec - i, keys + i, ptrs + i);
  }

  __attribute__((target("avx2"))) static bool VerifyRecords(
      const void* recs, std::size_t nrec, const std::uint64_t* keys,
      const std::uint64_t* ptrs) {
    const auto* r = static_cast<const std::uint64_t*>(recs);
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= nrec; i += 4) {
      const __m256i r0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r + 2 * i));
      const __m256i r1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r + 2 * i + 4));
      const __m256i k = _mm256_permute4x64_epi64(
          _mm256_unpacklo_epi64(r0, r1), 0xD8);
      const __m256i p = _mm256_permute4x64_epi64(
          _mm256_unpackhi_epi64(r0, r1), 0xD8);
      acc = _mm256_or_si256(
          acc, _mm256_xor_si256(k, _mm256_loadu_si256(
                                       reinterpret_cast<const __m256i*>(
                                           keys + i))));
      acc = _mm256_or_si256(
          acc, _mm256_xor_si256(p, _mm256_loadu_si256(
                                       reinterpret_cast<const __m256i*>(
                                           ptrs + i))));
    }
    bool ok = _mm256_testz_si256(acc, acc) != 0;
    if (i < nrec)
      ok = ScalarKernels::VerifyRecords(r + 2 * i, nrec - i, keys + i,
                                        ptrs + i) &&
           ok;
    return ok;
  }

  __attribute__((target("avx2"))) static std::size_t FindFirstEq(
      const std::uint64_t* a, std::size_t from, std::size_t to,
      std::uint64_t v) {
    if (from >= to) return kNpos;
    const __m256i vv = _mm256_set1_epi64x(static_cast<long long>(v));
    for (std::size_t i = from & ~std::size_t{3}; i < to; i += 4) {
      unsigned m = static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
              vv))));
      if (i < from) m &= ~0u << (from - i);
      if (m != 0) {
        const std::size_t idx =
            i + static_cast<std::size_t>(__builtin_ctz(m));
        return idx < to ? idx : kNpos;
      }
    }
    return kNpos;
  }

  __attribute__((target("avx2"))) static std::size_t FindFirstGt(
      const std::uint64_t* a, std::size_t from, std::size_t to,
      std::uint64_t v) {
    if (from >= to) return kNpos;
    // AVX2 has only signed 64-bit >: bias both sides by 2^63.
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    const __m256i vv = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(v)), bias);
    for (std::size_t i = from & ~std::size_t{3}; i < to; i += 4) {
      const __m256i x = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), bias);
      unsigned m = static_cast<unsigned>(_mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(x, vv))));
      if (i < from) m &= ~0u << (from - i);
      if (m != 0) {
        const std::size_t idx =
            i + static_cast<std::size_t>(__builtin_ctz(m));
        return idx < to ? idx : kNpos;
      }
    }
    return kNpos;
  }

  __attribute__((target("avx2"))) static std::size_t FindFirstZero(
      const std::uint64_t* a, std::size_t from, std::size_t to) {
    return FindFirstEq(a, from, to, 0);
  }

  __attribute__((target("avx2"))) static std::size_t FindLastEq(
      const std::uint64_t* a, std::size_t from, std::size_t to,
      std::uint64_t v) {
    if (from >= to) return kNpos;
    const __m256i vv = _mm256_set1_epi64x(static_cast<long long>(v));
    const std::size_t first_blk = from & ~std::size_t{3};
    std::size_t i = (to - 1) & ~std::size_t{3};
    for (;; i -= 4) {
      unsigned m = static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
              vv))));
      if (i + 4 > to) m &= (1u << (to - i)) - 1u;
      if (i < from) m &= ~0u << (from - i);
      if (m != 0)
        return i + static_cast<std::size_t>(31 - __builtin_clz(m));
      if (i == first_blk) return kNpos;
    }
  }

  __attribute__((target("avx2"))) static std::uint64_t ByteEqMask(
      const std::uint8_t* a, std::size_t n, std::uint8_t v) {
    const __m256i vv = _mm256_set1_epi8(static_cast<char>(v));
    const std::uint64_t lo = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)), vv)));
    const std::uint64_t hi = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 32)),
            vv)));
    const std::uint64_t mask = lo | (hi << 32);
    return n >= 64 ? mask : mask & ((std::uint64_t{1} << n) - 1);
  }

  static constexpr std::size_t kRecWidth = 4;

  // In-place interleaved compares: each 256-bit load holds {k, p, k, p},
  // so movemask_pd bits 0/2 are key lanes and bits 1/3 are ptr lanes —
  // exactly the stride-2 mask contract, no deinterleave permutes needed.
  __attribute__((target("avx2"))) static void RecordEqZero(
      const std::uint64_t* r, std::uint64_t key, unsigned* eq,
      unsigned* zero) {
    const __m256i r0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r));
    const __m256i r1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r + 4));
    const __m256i bk = _mm256_set1_epi64x(static_cast<long long>(key));
    const __m256i zz = _mm256_setzero_si256();
    const unsigned e0 = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(r0, bk))));
    const unsigned e1 = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(r1, bk))));
    const unsigned z0 = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(r0, zz))));
    const unsigned z1 = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(r1, zz))));
    *eq = (e0 & 0x5u) | ((e1 & 0x5u) << 4);
    *zero = ((z0 & 0xAu) | ((z1 & 0xAu) << 4)) >> 1;
  }

  __attribute__((target("avx2"))) static void RecordGtZero(
      const std::uint64_t* r, std::uint64_t key, unsigned* gt,
      unsigned* zero) {
    const __m256i r0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r));
    const __m256i r1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r + 4));
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    const __m256i bk = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(key)), bias);
    const __m256i zz = _mm256_setzero_si256();
    const unsigned g0 = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(
            _mm256_cmpgt_epi64(_mm256_xor_si256(r0, bias), bk))));
    const unsigned g1 = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(
            _mm256_cmpgt_epi64(_mm256_xor_si256(r1, bias), bk))));
    const unsigned z0 = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(r0, zz))));
    const unsigned z1 = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(r1, zz))));
    *gt = (g0 & 0x5u) | ((g1 & 0x5u) << 4);
    *zero = ((z0 & 0xAu) | ((z1 & 0xAu) << 4)) >> 1;
  }

  __attribute__((target("avx2"))) static std::size_t CollectEqU32(
      const std::uint32_t* a, std::size_t n, std::uint32_t v,
      std::uint32_t* out) {
    const __m256i vv = _mm256_set1_epi32(static_cast<int>(v));
    std::size_t c = 0, i = 0;
    for (; i + 8 <= n; i += 8) {
      unsigned m = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
              vv))));
      while (m != 0) {
        out[c++] = static_cast<std::uint32_t>(
            i + static_cast<std::size_t>(__builtin_ctz(m)));
        m &= m - 1;
      }
    }
    for (; i < n; ++i)
      if (a[i] == v) out[c++] = static_cast<std::uint32_t>(i);
    return c;
  }
};

// ---------------------------------------------------------------------------
// AVX-512 kernels: 8 keys per 512-bit compare, mask registers directly.
// ---------------------------------------------------------------------------

struct Avx512Kernels {
  static constexpr Isa kIsa = Isa::kAvx512;

  __attribute__((target("avx512f"))) static void CopyRecords(
      const void* recs, std::size_t nrec, std::uint64_t* keys,
      std::uint64_t* ptrs) {
    const auto* r = static_cast<const std::uint64_t*>(recs);
    const __m512i idxk =
        _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i idxp =
        _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
    std::size_t i = 0;
    for (; i + 8 <= nrec; i += 8) {
      const __m512i r0 =
          _mm512_loadu_si512(reinterpret_cast<const void*>(r + 2 * i));
      const __m512i r1 =
          _mm512_loadu_si512(reinterpret_cast<const void*>(r + 2 * i + 8));
      _mm512_storeu_si512(reinterpret_cast<void*>(keys + i),
                          _mm512_permutex2var_epi64(r0, idxk, r1));
      _mm512_storeu_si512(reinterpret_cast<void*>(ptrs + i),
                          _mm512_permutex2var_epi64(r0, idxp, r1));
    }
    if (i < nrec)
      ScalarKernels::CopyRecords(r + 2 * i, nrec - i, keys + i, ptrs + i);
  }

  __attribute__((target("avx512f"))) static bool VerifyRecords(
      const void* recs, std::size_t nrec, const std::uint64_t* keys,
      const std::uint64_t* ptrs) {
    const auto* r = static_cast<const std::uint64_t*>(recs);
    const __m512i idxk = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i idxp = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
    __mmask8 bad = 0;
    std::size_t i = 0;
    for (; i + 8 <= nrec; i += 8) {
      const __m512i r0 =
          _mm512_loadu_si512(reinterpret_cast<const void*>(r + 2 * i));
      const __m512i r1 =
          _mm512_loadu_si512(reinterpret_cast<const void*>(r + 2 * i + 8));
      bad |= _mm512_cmpneq_epu64_mask(
          _mm512_permutex2var_epi64(r0, idxk, r1),
          _mm512_loadu_si512(reinterpret_cast<const void*>(keys + i)));
      bad |= _mm512_cmpneq_epu64_mask(
          _mm512_permutex2var_epi64(r0, idxp, r1),
          _mm512_loadu_si512(reinterpret_cast<const void*>(ptrs + i)));
    }
    bool ok = bad == 0;
    if (i < nrec)
      ok = ScalarKernels::VerifyRecords(r + 2 * i, nrec - i, keys + i,
                                        ptrs + i) &&
           ok;
    return ok;
  }

  __attribute__((target("avx512f"))) static std::size_t FindFirstEq(
      const std::uint64_t* a, std::size_t from, std::size_t to,
      std::uint64_t v) {
    if (from >= to) return kNpos;
    const __m512i vv = _mm512_set1_epi64(static_cast<long long>(v));
    for (std::size_t i = from & ~std::size_t{7}; i < to; i += 8) {
      unsigned m = _mm512_cmpeq_epu64_mask(
          _mm512_loadu_si512(reinterpret_cast<const void*>(a + i)), vv);
      if (i < from) m &= ~0u << (from - i);
      if (m != 0) {
        const std::size_t idx =
            i + static_cast<std::size_t>(__builtin_ctz(m));
        return idx < to ? idx : kNpos;
      }
    }
    return kNpos;
  }

  __attribute__((target("avx512f"))) static std::size_t FindFirstGt(
      const std::uint64_t* a, std::size_t from, std::size_t to,
      std::uint64_t v) {
    if (from >= to) return kNpos;
    const __m512i vv = _mm512_set1_epi64(static_cast<long long>(v));
    for (std::size_t i = from & ~std::size_t{7}; i < to; i += 8) {
      unsigned m = _mm512_cmpgt_epu64_mask(
          _mm512_loadu_si512(reinterpret_cast<const void*>(a + i)), vv);
      if (i < from) m &= ~0u << (from - i);
      if (m != 0) {
        const std::size_t idx =
            i + static_cast<std::size_t>(__builtin_ctz(m));
        return idx < to ? idx : kNpos;
      }
    }
    return kNpos;
  }

  __attribute__((target("avx512f"))) static std::size_t FindFirstZero(
      const std::uint64_t* a, std::size_t from, std::size_t to) {
    return FindFirstEq(a, from, to, 0);
  }

  __attribute__((target("avx512f"))) static std::size_t FindLastEq(
      const std::uint64_t* a, std::size_t from, std::size_t to,
      std::uint64_t v) {
    if (from >= to) return kNpos;
    const __m512i vv = _mm512_set1_epi64(static_cast<long long>(v));
    const std::size_t first_blk = from & ~std::size_t{7};
    std::size_t i = (to - 1) & ~std::size_t{7};
    for (;; i -= 8) {
      unsigned m = _mm512_cmpeq_epu64_mask(
          _mm512_loadu_si512(reinterpret_cast<const void*>(a + i)), vv);
      if (i + 8 > to) m &= (1u << (to - i)) - 1u;
      if (i < from) m &= ~0u << (from - i);
      if (m != 0)
        return i + static_cast<std::size_t>(31 - __builtin_clz(m));
      if (i == first_blk) return kNpos;
    }
  }

  __attribute__((target("avx512f,avx512bw"))) static std::uint64_t ByteEqMask(
      const std::uint8_t* a, std::size_t n, std::uint8_t v) {
    const std::uint64_t mask = _mm512_cmpeq_epi8_mask(
        _mm512_loadu_si512(reinterpret_cast<const void*>(a)),
        _mm512_set1_epi8(static_cast<char>(v)));
    return n >= 64 ? mask : mask & ((std::uint64_t{1} << n) - 1);
  }

  static constexpr std::size_t kRecWidth = 8;

  // Masked in-place compares over the interleaved record bytes: key lanes
  // are the even lanes (0x55), ptr lanes the odd (0xAA). The compare masks
  // come back already in the stride-2 bit layout — no permutex2var, no
  // index constants.
  __attribute__((target("avx512f"))) static void RecordEqZero(
      const std::uint64_t* r, std::uint64_t key, unsigned* eq,
      unsigned* zero) {
    const __m512i r0 = _mm512_loadu_si512(reinterpret_cast<const void*>(r));
    const __m512i r1 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(r + 8));
    const __m512i bk = _mm512_set1_epi64(static_cast<long long>(key));
    const __m512i zz = _mm512_setzero_si512();
    const unsigned e0 = _mm512_mask_cmpeq_epu64_mask(0x55, r0, bk);
    const unsigned e1 = _mm512_mask_cmpeq_epu64_mask(0x55, r1, bk);
    const unsigned z0 = _mm512_mask_cmpeq_epu64_mask(0xAA, r0, zz);
    const unsigned z1 = _mm512_mask_cmpeq_epu64_mask(0xAA, r1, zz);
    *eq = e0 | (e1 << 8);
    *zero = (z0 | (z1 << 8)) >> 1;
  }

  __attribute__((target("avx512f"))) static void RecordGtZero(
      const std::uint64_t* r, std::uint64_t key, unsigned* gt,
      unsigned* zero) {
    const __m512i r0 = _mm512_loadu_si512(reinterpret_cast<const void*>(r));
    const __m512i r1 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(r + 8));
    const __m512i bk = _mm512_set1_epi64(static_cast<long long>(key));
    const __m512i zz = _mm512_setzero_si512();
    const unsigned g0 = _mm512_mask_cmpgt_epu64_mask(0x55, r0, bk);
    const unsigned g1 = _mm512_mask_cmpgt_epu64_mask(0x55, r1, bk);
    const unsigned z0 = _mm512_mask_cmpeq_epu64_mask(0xAA, r0, zz);
    const unsigned z1 = _mm512_mask_cmpeq_epu64_mask(0xAA, r1, zz);
    *gt = g0 | (g1 << 8);
    *zero = (z0 | (z1 << 8)) >> 1;
  }

  __attribute__((target("avx512f"))) static std::size_t CollectEqU32(
      const std::uint32_t* a, std::size_t n, std::uint32_t v,
      std::uint32_t* out) {
    const __m512i vv = _mm512_set1_epi32(static_cast<int>(v));
    std::size_t c = 0, i = 0;
    for (; i + 16 <= n; i += 16) {
      unsigned m = _mm512_cmpeq_epu32_mask(
          _mm512_loadu_si512(reinterpret_cast<const void*>(a + i)), vv);
      while (m != 0) {
        out[c++] = static_cast<std::uint32_t>(
            i + static_cast<std::size_t>(__builtin_ctz(m)));
        m &= m - 1;
      }
    }
    for (; i < n; ++i)
      if (a[i] == v) out[c++] = static_cast<std::uint32_t>(i);
    return c;
  }
};

#endif  // FASTFAIR_SIMD_X86

#if defined(FASTFAIR_SIMD_NEON)

// ---------------------------------------------------------------------------
// NEON kernels (aarch64): 2 keys per 128-bit compare, vld2 deinterleave.
// NEON has no movemask; lane masks come from narrowing the compare result.
// ---------------------------------------------------------------------------

struct NeonKernels {
  static constexpr Isa kIsa = Isa::kNeon;

  static unsigned Mask2(uint64x2_t m) {
    return static_cast<unsigned>(vgetq_lane_u64(m, 0) & 1) |
           (static_cast<unsigned>(vgetq_lane_u64(m, 1) & 1) << 1);
  }

  static void CopyRecords(const void* recs, std::size_t nrec,
                          std::uint64_t* keys, std::uint64_t* ptrs) {
    const auto* r = static_cast<const std::uint64_t*>(recs);
    std::size_t i = 0;
    for (; i + 2 <= nrec; i += 2) {
      const uint64x2x2_t kp = vld2q_u64(r + 2 * i);
      vst1q_u64(keys + i, kp.val[0]);
      vst1q_u64(ptrs + i, kp.val[1]);
    }
    if (i < nrec)
      ScalarKernels::CopyRecords(r + 2 * i, nrec - i, keys + i, ptrs + i);
  }

  static bool VerifyRecords(const void* recs, std::size_t nrec,
                            const std::uint64_t* keys,
                            const std::uint64_t* ptrs) {
    const auto* r = static_cast<const std::uint64_t*>(recs);
    uint64x2_t acc = vdupq_n_u64(0);
    std::size_t i = 0;
    for (; i + 2 <= nrec; i += 2) {
      const uint64x2x2_t kp = vld2q_u64(r + 2 * i);
      acc = vorrq_u64(acc, veorq_u64(kp.val[0], vld1q_u64(keys + i)));
      acc = vorrq_u64(acc, veorq_u64(kp.val[1], vld1q_u64(ptrs + i)));
    }
    bool ok = (vgetq_lane_u64(acc, 0) | vgetq_lane_u64(acc, 1)) == 0;
    if (i < nrec)
      ok = ScalarKernels::VerifyRecords(r + 2 * i, nrec - i, keys + i,
                                        ptrs + i) &&
           ok;
    return ok;
  }

  static std::size_t FindFirstEq(const std::uint64_t* a, std::size_t from,
                                 std::size_t to, std::uint64_t v) {
    if (from >= to) return kNpos;
    const uint64x2_t vv = vdupq_n_u64(v);
    for (std::size_t i = from & ~std::size_t{1}; i < to; i += 2) {
      unsigned m = Mask2(vceqq_u64(vld1q_u64(a + i), vv));
      if (i < from) m &= ~0u << (from - i);
      if (m != 0) {
        const std::size_t idx =
            i + static_cast<std::size_t>(__builtin_ctz(m));
        return idx < to ? idx : kNpos;
      }
    }
    return kNpos;
  }

  static std::size_t FindFirstGt(const std::uint64_t* a, std::size_t from,
                                 std::size_t to, std::uint64_t v) {
    if (from >= to) return kNpos;
    const uint64x2_t vv = vdupq_n_u64(v);
    for (std::size_t i = from & ~std::size_t{1}; i < to; i += 2) {
      unsigned m = Mask2(vcgtq_u64(vld1q_u64(a + i), vv));
      if (i < from) m &= ~0u << (from - i);
      if (m != 0) {
        const std::size_t idx =
            i + static_cast<std::size_t>(__builtin_ctz(m));
        return idx < to ? idx : kNpos;
      }
    }
    return kNpos;
  }

  static std::size_t FindFirstZero(const std::uint64_t* a, std::size_t from,
                                   std::size_t to) {
    return FindFirstEq(a, from, to, 0);
  }

  static std::size_t FindLastEq(const std::uint64_t* a, std::size_t from,
                                std::size_t to, std::uint64_t v) {
    if (from >= to) return kNpos;
    const uint64x2_t vv = vdupq_n_u64(v);
    const std::size_t first_blk = from & ~std::size_t{1};
    std::size_t i = (to - 1) & ~std::size_t{1};
    for (;; i -= 2) {
      unsigned m = Mask2(vceqq_u64(vld1q_u64(a + i), vv));
      if (i + 2 > to) m &= (1u << (to - i)) - 1u;
      if (i < from) m &= ~0u << (from - i);
      if (m != 0)
        return i + static_cast<std::size_t>(31 - __builtin_clz(m));
      if (i == first_blk) return kNpos;
    }
  }

  static std::uint64_t ByteEqMask(const std::uint8_t* a, std::size_t n,
                                  std::uint8_t v) {
    const uint8x16_t vv = vdupq_n_u8(v);
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < 64; i += 16) {
      const uint8x16_t eq = vceqq_u8(vld1q_u8(a + i), vv);
      // Narrow each byte's 0xFF/0x00 to a nibble, then collect bit 0 of
      // each nibble: shrn gives a 64-bit scalar with 4 bits per lane.
      const std::uint64_t nib = vget_lane_u64(
          vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(eq), 4)), 0);
      std::uint64_t bits = 0;
      for (std::size_t b = 0; b < 16; ++b)
        bits |= ((nib >> (4 * b)) & 1) << b;
      mask |= bits << i;
    }
    return n >= 64 ? mask : mask & ((std::uint64_t{1} << n) - 1);
  }

  static constexpr std::size_t kRecWidth = 2;

  // vld2q deinterleaves for free on NEON; only the per-record bits must be
  // spread to the stride-2 positions of the mask contract.
  static void RecordEqZero(const std::uint64_t* r, std::uint64_t key,
                           unsigned* eq, unsigned* zero) {
    const uint64x2x2_t kp = vld2q_u64(r);
    const unsigned e = Mask2(vceqq_u64(kp.val[0], vdupq_n_u64(key)));
    const unsigned z = Mask2(vceqq_u64(kp.val[1], vdupq_n_u64(0)));
    *eq = (e & 1u) | ((e & 2u) << 1);
    *zero = (z & 1u) | ((z & 2u) << 1);
  }

  static void RecordGtZero(const std::uint64_t* r, std::uint64_t key,
                           unsigned* gt, unsigned* zero) {
    const uint64x2x2_t kp = vld2q_u64(r);
    const unsigned g = Mask2(vcgtq_u64(kp.val[0], vdupq_n_u64(key)));
    const unsigned z = Mask2(vceqq_u64(kp.val[1], vdupq_n_u64(0)));
    *gt = (g & 1u) | ((g & 2u) << 1);
    *zero = (z & 1u) | ((z & 2u) << 1);
  }

  static std::size_t CollectEqU32(const std::uint32_t* a, std::size_t n,
                                  std::uint32_t v, std::uint32_t* out) {
    const uint32x4_t vv = vdupq_n_u32(v);
    std::size_t c = 0, i = 0;
    for (; i + 4 <= n; i += 4) {
      const uint32x4_t eq = vceqq_u32(vld1q_u32(a + i), vv);
      const std::uint64_t nib = vget_lane_u64(
          vreinterpret_u64_u16(vshrn_n_u32(eq, 16)), 0);
      for (std::size_t b = 0; b < 4; ++b)
        if ((nib >> (16 * b)) & 1)
          out[c++] = static_cast<std::uint32_t>(i + b);
    }
    for (; i < n; ++i)
      if (a[i] == v) out[c++] = static_cast<std::uint32_t>(i);
    return c;
  }
};

#endif  // FASTFAIR_SIMD_NEON

// ---------------------------------------------------------------------------
// Runtime-dispatched convenience wrappers (one predictable switch per call;
// hot paths that care resolve a function pointer per kernel instead — see
// core/node_search_simd.h).
// ---------------------------------------------------------------------------

/// ByteEqMask on the active ISA. Same 64-readable-bytes contract as the
/// kernel structs.
std::uint64_t ByteEqMask(const std::uint8_t* a, std::size_t n,
                         std::uint8_t v);

/// CollectEqU32 on the active ISA.
std::size_t CollectEqU32(const std::uint32_t* a, std::size_t n,
                         std::uint32_t v, std::uint32_t* out);

}  // namespace fastfair::simd
