// Range-sharded index adapter: the horizontal-scaling tier above any single
// Index implementation.
//
// The 64-bit key space is split into N contiguous ranges (fixed-point
// multiply: shard(k) = floor(k * N / 2^64)), one sub-index per range, all
// living in the same pm::Pool.  Range partitioning — not hashing — is what
// keeps Scan() cheap: each shard's keys are strictly greater than every key
// of the shard before it, so a cross-shard scan is the plain concatenation
// of per-shard scans, globally sorted with no merge step.
//
// What sharding buys on top of the per-thread arena allocator (pm/pool.h):
// concurrent writers to *different* key ranges touch disjoint trees, so they
// share neither node locks nor split paths; with uniform keys, contention on
// the hottest structure (the root's children) drops by ~N.  The adapter is
// structure-agnostic — MakeIndex registers it over FAST+FAIR as
// "sharded-fastfair[:N]" (default 8 shards), but any factory works.
//
// Uniform-range partitioning is the paper-faithful choice for the uniform
// benchmark workloads; skewed workloads would want weighted boundaries or
// hash sharding (ROADMAP open item).

#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "index/index.h"

namespace fastfair {

/// Upper bound on the shard count accepted by the registry (and by the
/// benches' --shards flag).
inline constexpr std::size_t kMaxShards = 1024;

/// The one parser for the sharded kind grammar
/// "sharded-<inner kind>[:N]" (e.g. "sharded-fastfair",
/// "sharded-fptree:4"): returns the shard count (default 8) and, when
/// `inner_kind` is non-null, stores the inner kind string; returns 0 when
/// `kind` does not name the sharded adapter at all; throws
/// std::invalid_argument for a malformed or out-of-range count, an empty
/// inner kind, or a nested "sharded-" inner kind. Whether the inner kind
/// itself exists is the registry's (MakeIndex's) concern.
std::size_t TryParseShardedKind(std::string_view kind,
                                std::string* inner_kind = nullptr);

class ShardedIndex final : public Index {
 public:
  /// Builds sub-index number `shard` (0-based). All shards should be of the
  /// same kind; Scan correctness only needs each to return sorted results.
  using ShardFactory = std::function<std::unique_ptr<Index>(std::size_t)>;

  /// Equal-width partition of the full [0, 2^64) key space into
  /// `num_shards` ranges. Throws std::invalid_argument when zero.
  ShardedIndex(std::string name, std::size_t num_shards,
               const ShardFactory& make);

  /// Explicit range boundaries for keys that occupy only a slice of the
  /// 2^64 space (e.g. TPC-C's packed composite keys, src/tpcc/db.cc):
  /// `boundaries[i]` is the first key of shard i+1, non-decreasing; shard
  /// count = boundaries.size() + 1. Throws std::invalid_argument when the
  /// boundaries are not sorted.
  ShardedIndex(std::string name, std::vector<Key> boundaries,
               const ShardFactory& make);

  void Insert(Key key, Value value) override;
  bool Remove(Key key) override;
  Value Search(Key key) const override;
  std::size_t Scan(Key min_key, std::size_t max_results,
                   core::Record* out) const override;
  std::size_t CountEntries() const override;

  std::string_view name() const override { return name_; }
  /// True iff every shard supports concurrent callers (operations on one
  /// key never touch more than its own shard).
  bool supports_concurrency() const override { return concurrent_; }

  std::size_t num_shards() const { return shards_.size(); }

  /// Monotonic in `key`: explicit boundaries when configured, otherwise the
  /// equal-width fixed-point partition of [0, 2^64).
  std::size_t ShardOf(Key key) const {
    if (!boundaries_.empty()) {
      return static_cast<std::size_t>(
          std::upper_bound(boundaries_.begin(), boundaries_.end(), key) -
          boundaries_.begin());
    }
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(key) * shards_.size()) >> 64);
  }

 private:
  void BuildShards(std::size_t num_shards, const ShardFactory& make);

  std::vector<std::unique_ptr<Index>> shards_;
  std::vector<Key> boundaries_;  // empty => uniform fixed-point partition
  std::string name_;
  bool concurrent_ = true;
};

}  // namespace fastfair
