// Range-sharded index adapter: the horizontal-scaling tier above any single
// Index implementation (DESIGN.md §4).
//
// The 64-bit key space is split into N contiguous ranges (fixed-point
// multiply: shard(k) = floor(k * N / 2^64)), one sub-index per range, all
// living in the same pm::Pool.  Range partitioning — not hashing — is what
// keeps Scan() cheap: each shard's keys are strictly greater than every key
// of the shard before it, so a cross-shard scan is the plain concatenation
// of per-shard scans, globally sorted with no merge step.  (The dual
// trade-off — balanced point ops under skew, merged scans — is
// HashShardedIndex, index/hash_sharded.h.)
//
// What sharding buys on top of the per-thread arena allocator (pm/pool.h):
// concurrent writers to *different* key ranges touch disjoint trees, so they
// share neither node locks nor split paths; with uniform keys, contention on
// the hottest structure (the root's children) drops by ~N.  The adapter is
// structure-agnostic — MakeIndex registers it over FAST+FAIR as
// "sharded-fastfair[:N]" (default 8 shards), but any factory works.
//
// Uniform-range partitioning is the paper-faithful choice for the uniform
// benchmark workloads.  Skewed workloads pile onto a few ranges; for those
// the adapter keeps a per-shard entry-count histogram (relaxed counters,
// snapshot sampled every SetSampleInterval ops) and offers an explicit
// Rebalance() that recomputes the boundaries from the observed key
// quantiles and migrates entries shard-to-shard (protocol in DESIGN.md
// §4.3: copy to the new shard, publish the boundaries, then delete the
// stale copies — concurrent readers always find a key under whichever
// boundary set they observe, and concurrent writers dual-route through
// the migration window so racing upserts land exactly once).

#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/index.h"

namespace fastfair {

/// Upper bound on the shard count accepted by the registry (and by the
/// benches' --shards flag), shared by the sharded- and hashed- grammars.
inline constexpr std::size_t kMaxShards = 1024;

/// The one parser for the sharded kind grammar
/// "sharded-<inner kind>[:N]" (e.g. "sharded-fastfair",
/// "sharded-fptree:4"): returns the shard count (default 8) and, when
/// `inner_kind` is non-null, stores the inner kind string; returns 0 when
/// `kind` does not name the sharded adapter at all; throws
/// std::invalid_argument for a malformed or out-of-range count, an empty
/// inner kind, or a nested sharding adapter ("sharded-"/"hashed-") as the
/// inner kind. Whether the inner kind itself exists is the registry's
/// (MakeIndex's) concern.
std::size_t TryParseShardedKind(std::string_view kind,
                                std::string* inner_kind = nullptr);

namespace detail {
/// Shared implementation behind TryParseShardedKind and TryParseHashedKind:
/// parses "<prefix><inner kind>[:N]" with the contract documented on
/// TryParseShardedKind.
std::size_t ParseShardGrammar(std::string_view kind, std::string_view prefix,
                              std::string* inner_kind);

/// Builds `num_shards` sub-indexes via `make` into `*out`; returns true iff
/// every one supports concurrent callers. Throws std::invalid_argument when
/// `num_shards` is zero. Shared by the range- and hash-sharded adapters.
bool BuildShardVector(
    std::size_t num_shards,
    const std::function<std::unique_ptr<Index>(std::size_t)>& make,
    std::vector<std::unique_ptr<Index>>* out);

/// Exact per-shard entry counts via each shard's CountEntries — the shared
/// body of both adapters' ShardEntryCounts/CountEntries (quiescent-state
/// helpers; under writers the per-shard sums are relaxed snapshots).
std::vector<std::size_t> PerShardEntryCounts(
    const std::vector<std::unique_ptr<Index>>& shards);

/// Stable counting-sort bucketing shared by both adapters' batch paths:
/// given per-element shard ids, fills `order` with the element indexes
/// grouped by shard (original order preserved within each shard) and
/// `start` with per-shard offsets into it (size num_shards + 1).
void BucketByShard(const std::uint32_t* shard_ids, std::size_t n,
                   std::size_t num_shards, std::vector<std::uint32_t>* order,
                   std::vector<std::size_t>* start);

/// The shared batch driver behind all four sharded batch entry points:
/// routes every element with `shard_of`, stable-buckets the batch
/// (BucketByShard), gathers each shard's elements contiguously (original
/// order preserved, so duplicate-key upsert semantics survive), and hands
/// each non-empty group to `dispatch(shard, elems, len, positions)` —
/// `positions` being the group's original batch indexes, for scattering
/// per-element results back to the caller's slots.
template <class Elem, class ShardOfFn, class DispatchFn>
void DispatchBatchByShard(const Elem* elems, std::size_t n,
                          std::size_t num_shards, ShardOfFn&& shard_of,
                          DispatchFn&& dispatch) {
  std::vector<std::uint32_t> shard_ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    shard_ids[i] = static_cast<std::uint32_t>(shard_of(elems[i]));
  }
  std::vector<std::uint32_t> order;
  std::vector<std::size_t> start;
  BucketByShard(shard_ids.data(), n, num_shards, &order, &start);
  std::vector<Elem> gathered(n);
  for (std::size_t p = 0; p < n; ++p) gathered[p] = elems[order[p]];
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t len = start[s + 1] - start[s];
    if (len == 0) continue;
    dispatch(s, gathered.data() + start[s], len, order.data() + start[s]);
  }
}
}  // namespace detail

/// max/min over per-shard entry counts, the imbalance metric the skew
/// benches gate on (empty shards clamp the denominator to 1, so a shard
/// left empty by skew is charged, not hidden). 1.0 for an empty index.
double ImbalanceRatio(const std::vector<std::size_t>& shard_entries);

class ShardedIndex final : public Index {
 public:
  /// Builds sub-index number `shard` (0-based). All shards should be of the
  /// same kind; Scan correctness only needs each to return sorted results.
  using ShardFactory = std::function<std::unique_ptr<Index>(std::size_t)>;

  /// Equal-width partition of the full [0, 2^64) key space into
  /// `num_shards` ranges. Throws std::invalid_argument when zero.
  ShardedIndex(std::string name, std::size_t num_shards,
               const ShardFactory& make);

  /// Explicit range boundaries for keys that occupy only a slice of the
  /// 2^64 space (e.g. TPC-C's packed composite keys, src/tpcc/db.cc):
  /// `boundaries[i]` is the first key of shard i+1, non-decreasing; shard
  /// count = boundaries.size() + 1. Throws std::invalid_argument when the
  /// boundaries are not sorted.
  ShardedIndex(std::string name, std::vector<Key> boundaries,
               const ShardFactory& make);

  void Insert(Key key, Value value) override;
  bool Remove(Key key) override;
  Value Search(Key key) const override;
  std::size_t Scan(Key min_key, std::size_t max_results,
                   core::Record* out) const override;

  /// Native batch overrides (DESIGN.md §8.3): the batch is partitioned by
  /// shard in one routing pass under a single epoch pin (scalar ops pin
  /// per key), then each shard receives its sub-batch in original order —
  /// one virtual call, one counter update, one histogram check per shard
  /// group instead of one per key — and results (values, per-op insert
  /// statuses) scatter back to the caller's positions.
  void SearchBatch(const Key* keys, std::size_t n, Value* out) const override;
  using Index::InsertBatch;  // keep the 2-arg convenience form visible
  void InsertBatch(const core::Record* ops, std::size_t n,
                   InsertStatus* out) override;

  /// Batched scans: start keys bucket per shard (BucketByShard) so each
  /// shard drains its group through one native ScanBatch call; because the
  /// shards are ordered ranges the drains stay merge-free, and an op that
  /// exhausts its start shard short of `cap` continues into the following
  /// shards from key 0, exactly like the scalar Scan's concatenation.
  void ScanBatch(const ScanOp* ops, std::size_t n,
                 std::size_t* out_counts) const override;

  /// Sums the per-shard counts shard by shard, *non-atomically* with
  /// respect to concurrent writers: an insert or remove that lands in a
  /// shard after that shard was counted but while later shards are still
  /// being walked is missed (or, for a Rebalance-migrated entry, counted
  /// twice). The result is exact only at quiescence; under concurrency it
  /// is a relaxed snapshot bounded by the true count plus in-flight ops.
  /// Tests that count while writers run must tolerate that window
  /// (tests/sharded_index_test.cc: CountEntriesDuringWritesIsRelaxed).
  std::size_t CountEntries() const override;

  /// Streams shard by shard in range order — merge-free, like Scan.
  /// The iterator holds an epoch pin until it is exhausted or destroyed,
  /// so a Rebalance racing an open iterator cannot delete the stale
  /// copies (or reclaim drained nodes) out from under it: the snapshot
  /// stays consistent through copy/publish/delete. Epoch pins are
  /// thread-affine — create, drain and destroy the iterator on one
  /// thread, and never call Rebalance() on a thread holding an
  /// unexhausted iterator (the grace periods would wait on its own pin).
  std::unique_ptr<ScanIterator> NewScanIterator(Key min_key) const override;

  std::string_view name() const override { return name_; }
  /// True iff every shard supports concurrent callers (operations on one
  /// key never touch more than its own shard).
  bool supports_concurrency() const override { return concurrent_; }

  std::size_t num_shards() const { return shards_.size(); }

  /// Monotonic in `key`: explicit boundaries when configured (the buffer
  /// published last by the constructor or Rebalance), otherwise the
  /// equal-width fixed-point partition of [0, 2^64). seq_cst load (a plain
  /// MOV on x86): pairs with Rebalance's seq_cst publish + epoch grace
  /// period so a reader pinned after the grace period provably routes by
  /// the new boundaries.
  std::size_t ShardOf(Key key) const {
    return ShardWith(bounds_[active_.load(std::memory_order_seq_cst)], key);
  }

  // --- skew instrumentation + rebalance (DESIGN.md §4.3) -------------------

  /// Every `ops` routed *mutations* (inserts + removes — lookups never
  /// touch shared counters, so the lock-free search path stays
  /// instrumentation-free), the live per-shard entry estimates are
  /// snapshotted into the histogram returned by LastHistogram(). 0
  /// disables sampling (the relaxed counters still run). Default: 4096.
  void SetSampleInterval(std::size_t ops) {
    sample_interval_.store(ops, std::memory_order_relaxed);
  }

  /// Current sampling interval (0 = disabled). The imbalance policy task
  /// (maint/tasks.h) reads this to re-enable a sane default when a caller
  /// disabled sampling and then attached a policy that needs the signal.
  std::size_t sample_interval() const {
    return sample_interval_.load(std::memory_order_relaxed);
  }

  /// The most recent sampled entry-count histogram (empty until the first
  /// sample interval elapses).
  std::vector<std::size_t> LastHistogram() const;

  /// Live approximate entries per shard from the relaxed counters:
  /// +1 per Insert (upserts overcount re-inserted keys), -1 per successful
  /// Remove; resynced to exact counts by Rebalance().
  std::vector<std::size_t> ApproxShardEntries() const;

  /// Exact per-shard entry counts via each shard's CountEntries
  /// (quiescent-state helper, like CountEntries itself).
  std::vector<std::size_t> ShardEntryCounts() const;

  struct RebalanceResult {
    std::size_t moved = 0;          // entries migrated to a different shard
    double imbalance_before = 1.0;  // ImbalanceRatio over exact counts
    double imbalance_after = 1.0;
  };

  /// Recomputes the shard boundaries from the observed key quantiles (each
  /// new shard gets ~1/N of the live entries) and migrates every entry
  /// whose new shard differs. Protocol (DESIGN.md §4.3): (1) copy each
  /// moving entry into its new shard while the old boundaries still route
  /// lookups to the old copy, (2) publish the new boundaries (seq_cst
  /// store paired with ShardOf's seq_cst load plus an epoch grace period;
  /// readers see either boundary set, both of which route
  /// every key to a shard that holds it), (3) remove the stale copies from
  /// the old shards — with a reclaiming inner kind (fastfair-reclaim) this
  /// frees the drained nodes through the pool free lists under the
  /// existing epoch guards (pm/reclaim.h; the inner ops pin).
  ///
  /// Safe under concurrent *readers*: Search/Scan pin the reclamation
  /// epoch across route + lookup, and the publish step waits out every
  /// pinned reader before the stale copies are deleted (and before an
  /// older boundary buffer is reused), so a reader routed by either
  /// boundary set always finds its key. A cross-shard Scan may
  /// transiently see a migrating key twice.
  ///
  /// Safe under concurrent *writers* too (DESIGN.md §4.3): through the
  /// migration window (`migrating_` set, bracketed by epoch grace
  /// periods) every Insert/Remove applies under BOTH boundary sets —
  /// old shard first, then a per-key migration-stripe bump, then the new
  /// shard — and phase 1's copy loop re-reads any key whose stripe moved
  /// (seqlock), so a racing upsert lands exactly once: either the copy
  /// observes the post-write value, or the writer's own new-shard apply
  /// is ordered after the copy and wins. Two writers racing the *same*
  /// key through the window get a linearizable-but-arbitrary winner,
  /// exactly as they would racing the same leaf without a rebalance.
  /// Requires the inner shards to support concurrent callers when
  /// writers are live (a non-concurrent inner kind such as sharded-wort
  /// keeps the single-writer contract it always had). Calls serialize on
  /// an internal mutex.
  RebalanceResult Rebalance();

  /// Contributes an ImbalancePolicyTask that closes the histogram →
  /// Rebalance loop in the background, then recurses into the shards (a
  /// reclaiming inner kind adds its per-shard sweep tasks).
  void CollectMaintenanceTasks(
      const maint::TaskOptions& opts,
      std::vector<std::unique_ptr<maint::MaintenanceTask>>* out) override;

 private:
  // Padded so two shards' counters never share a cache line: the counters
  // measure skew, they must not add cross-shard contention of their own.
  // Only mutations touch them — `ops` counts routed inserts + removes.
  struct alignas(kCacheLineSize) ShardCounters {
    std::atomic<std::int64_t> entries{0};
    std::atomic<std::uint64_t> ops{0};
  };

  /// Routes `key` under an explicit boundary buffer (empty => uniform
  /// fixed-point partition). ShardOf routes under the active buffer; the
  /// migration window routes each write under both buffers with ONE
  /// active_ load (two loads could straddle the publish and route both
  /// applies to the same shard, losing the write).
  std::size_t ShardWith(const std::vector<Key>& b, Key key) const {
    if (!b.empty()) {
      return static_cast<std::size_t>(
          std::upper_bound(b.begin(), b.end(), key) - b.begin());
    }
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(key) * shards_.size()) >> 64);
  }

  /// The key's migration seqlock stripe (Fibonacci hash, top bits).
  /// Collisions only cause spurious copy-loop retries, never misses.
  std::atomic<std::uint64_t>& MigSeqOf(Key key) const {
    return mig_seq_[(key * 0x9E3779B97F4A7C15ull) >> (64 - kMigStripeBits)];
  }

  void BuildShards(std::size_t num_shards, const ShardFactory& make);
  void NoteOp(std::size_t shard) const { NoteOps(shard, 1); }
  /// Bulk form: one counter add for a batch's whole shard group; samples
  /// the histogram when the add crosses a sampling-interval boundary.
  void NoteOps(std::size_t shard, std::uint64_t k) const;
  void SampleHistogram() const;

  std::vector<std::unique_ptr<Index>> shards_;
  std::unique_ptr<ShardCounters[]> counters_;  // one per shard
  // Double-buffered boundaries: Rebalance writes the inactive buffer, then
  // publishes it with one release store; ShardOf never sees a half-written
  // vector. Empty active buffer => uniform fixed-point partition.
  std::array<std::vector<Key>, 2> bounds_;
  std::atomic<unsigned> active_{0};
  // Live-writer migration window (DESIGN.md §4.3). While set (between
  // Rebalance's pre-copy and pre-delete grace periods) writers dual-route
  // and bump their key's stripe between the two applies; the copy loop
  // retries any key whose stripe moved. Striped rather than per-key: the
  // counters are contention-only state, never consulted for routing.
  static constexpr unsigned kMigStripeBits = 10;  // 1024 stripes
  std::atomic<bool> migrating_{false};
  std::unique_ptr<std::atomic<std::uint64_t>[]> mig_seq_;
  std::atomic<std::size_t> sample_interval_{4096};
  mutable std::mutex histogram_mu_;  // guards last_histogram_
  mutable std::vector<std::size_t> last_histogram_;
  std::mutex rebalance_mu_;
  std::string name_;
  bool concurrent_ = true;
};

}  // namespace fastfair
