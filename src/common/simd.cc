#include "common/simd.h"

#include <atomic>
#include <cstdlib>

namespace fastfair::simd {

namespace {

Isa DetectBestIsa() {
#if defined(FASTFAIR_SIMD_X86)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    return Isa::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Isa::kSse2;
  return Isa::kScalar;
#elif defined(FASTFAIR_SIMD_NEON)
  return Isa::kNeon;  // NEON is baseline on aarch64
#else
  return Isa::kScalar;
#endif
}

Isa ResolveFromEnv() {
  const char* env = std::getenv("FASTFAIR_SIMD");
  if (env == nullptr || env[0] == '\0') return BestSupportedIsa();
  Isa parsed = Isa::kScalar;
  if (!ParseIsa(env, &parsed)) return Isa::kScalar;  // unknown -> scalar
  return IsaSupported(parsed) ? parsed : Isa::kScalar;
}

std::atomic<Isa>& ActiveSlot() {
  static std::atomic<Isa> active{ResolveFromEnv()};
  return active;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kNeon:
      return "neon";
  }
  return "scalar";
}

bool ParseIsa(std::string_view s, Isa* out) {
  if (s.empty() || s == "auto") {
    *out = BestSupportedIsa();
    return true;
  }
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kAvx512,
                  Isa::kNeon}) {
    if (s == IsaName(isa)) {
      *out = isa;
      return true;
    }
  }
  return false;
}

bool IsaCompiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
    case Isa::kAvx2:
    case Isa::kAvx512:
#if defined(FASTFAIR_SIMD_X86)
      return true;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(FASTFAIR_SIMD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool IsaSupported(Isa isa) {
  if (!IsaCompiled(isa)) return false;
#if defined(FASTFAIR_SIMD_X86)
  __builtin_cpu_init();
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0;
    case Isa::kNeon:
      return false;
  }
  return false;
#else
  return true;  // compiled implies supported off x86 (scalar / baseline NEON)
#endif
}

Isa BestSupportedIsa() {
  static const Isa best = DetectBestIsa();
  return best;
}

Isa ActiveIsa() { return ActiveSlot().load(std::memory_order_relaxed); }

Isa ForceIsa(Isa isa) {
  const Isa installed = IsaSupported(isa) ? isa : Isa::kScalar;
  ActiveSlot().store(installed, std::memory_order_relaxed);
  return installed;
}

std::uint64_t ByteEqMask(const std::uint8_t* a, std::size_t n,
                         std::uint8_t v) {
  switch (ActiveIsa()) {
#if defined(FASTFAIR_SIMD_X86)
    case Isa::kSse2:
      return Sse2Kernels::ByteEqMask(a, n, v);
    case Isa::kAvx2:
      return Avx2Kernels::ByteEqMask(a, n, v);
    case Isa::kAvx512:
      return Avx512Kernels::ByteEqMask(a, n, v);
#endif
#if defined(FASTFAIR_SIMD_NEON)
    case Isa::kNeon:
      return NeonKernels::ByteEqMask(a, n, v);
#endif
    default:
      return ScalarKernels::ByteEqMask(a, n, v);
  }
}

std::size_t CollectEqU32(const std::uint32_t* a, std::size_t n,
                         std::uint32_t v, std::uint32_t* out) {
  switch (ActiveIsa()) {
#if defined(FASTFAIR_SIMD_X86)
    case Isa::kSse2:
      return Sse2Kernels::CollectEqU32(a, n, v, out);
    case Isa::kAvx2:
      return Avx2Kernels::CollectEqU32(a, n, v, out);
    case Isa::kAvx512:
      return Avx512Kernels::CollectEqU32(a, n, v, out);
#endif
#if defined(FASTFAIR_SIMD_NEON)
    case Isa::kNeon:
      return NeonKernels::CollectEqU32(a, n, v, out);
#endif
    default:
      return ScalarKernels::CollectEqU32(a, n, v, out);
  }
}

}  // namespace fastfair::simd
