// Intentionally header-only (bench/stats.h); this TU anchors the target.
#include "bench/stats.h"
